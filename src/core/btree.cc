#include "core/btree.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <string>

#include "fault/crash_point.h"
#include "lock/lock_table.h"
#include "obs/bridge.h"
#include "recover/recoverer.h"
#include "util/logging.h"
#include "vlog/vlog.h"

namespace sherman {

namespace {
constexpr int kMaxSiblingChase = 64;

// Named crash sites: one per remote-write milestone of every multi-write
// structural op in this file (tests/recover_test.cc enumerates the full
// registry and kills a victim client at each site; SHERMAN_CRASH_AT
// arms the same sites from the environment). Between two adjacent sites
// exactly one batch of remote writes lands, so the sweep exercises every
// crash-reachable remote state.
const int kCrashSplitIntent = fault::RegisterCrashSite("split.intent");
const int kCrashSplitSibling = fault::RegisterCrashSite("split.sibling");
const int kCrashSplitLeaf = fault::RegisterCrashSite("split.leaf");
const int kCrashSplitLinked = fault::RegisterCrashSite("split.linked");
const int kCrashIsplitIntent = fault::RegisterCrashSite("isplit.intent");
const int kCrashIsplitRight = fault::RegisterCrashSite("isplit.right");
const int kCrashIsplitCommit = fault::RegisterCrashSite("isplit.commit");
const int kCrashIsplitLinked = fault::RegisterCrashSite("isplit.linked");
const int kCrashSplitRoot = fault::RegisterCrashSite("split.root");
const int kCrashMergeIntent = fault::RegisterCrashSite("merge.intent");
const int kCrashMergeTombstone = fault::RegisterCrashSite("merge.tombstone");
const int kCrashMergeParent = fault::RegisterCrashSite("merge.parent");
const int kCrashMergeSibling = fault::RegisterCrashSite("merge.sibling");
const int kCrashMergeFreed = fault::RegisterCrashSite("merge.freed");
}  // namespace

void TreeOptions::Validate() const {
  SHERMAN_CHECK(shape.node_size >= 128);
  SHERMAN_CHECK(shape.key_size >= 8);
  SHERMAN_CHECK(shape.value_size >= 8);
  SHERMAN_CHECK_MSG(shape.leaf_capacity() >= 2, "node too small for leaves");
  SHERMAN_CHECK_MSG(shape.internal_capacity() >= 3,
                    "node too small for internal fanout");
  if (two_level_versions) {
    SHERMAN_CHECK_MSG(consistency == Consistency::kVersions,
                      "two-level versions require version-based checks");
  }
  SHERMAN_CHECK_MSG(merge_threshold >= 0 && merge_threshold <= 0.9,
                    "merge_threshold must be in [0, 0.9]");
  if (shape.varlen) {
    // Slotted leaves are whole-node write-back with node-level validation;
    // per-entry version pairs cannot cover a variable region.
    SHERMAN_CHECK_MSG(!two_level_versions,
                      "varlen requires two_level_versions=false");
    SHERMAN_CHECK_MSG(shape.node_size <= 65535,
                      "varlen slots store u16 offsets");
    SHERMAN_CHECK(shape.max_key_len >= 1 && shape.max_key_len <= 255);
    SHERMAN_CHECK_MSG(inline_threshold >= 8 && inline_threshold <= 4096,
                      "inline_threshold out of range");
    // A leaf must hold at least two maximal entries, or a single oversize
    // routing group could wedge the split path.
    SHERMAN_CHECK_MSG(
        shape.var_usable_bytes() >=
            2 * (kVarSlotSize + shape.max_key_len + inline_threshold),
        "node too small for two maximal varlen entries");
    SHERMAN_CHECK_MSG(vlog_segment_bytes >= (64u << 7) &&
                          vlog_segment_bytes / 64 <= 65535,
                      "vlog_segment_bytes out of range");
  }
}

// ---------------------------------------------------------------------------
// TreeClient
// ---------------------------------------------------------------------------

TreeClient::TreeClient(ShermanSystem* system, int cs_id)
    : system_(system),
      cs_id_(cs_id),
      hocl_(&system->fabric(), cs_id, system->options().lock),
      allocator_(&system->fabric(), cs_id),
      cache_(system->options().enable_cache ? system->options().cache_bytes : 0,
             system->options().shape.node_size,
             /*seed=*/0x5eed0000 + static_cast<uint64_t>(cs_id)),
      intents_(&system->fabric(), cs_id),
      recoverer_(std::make_unique<recover::Recoverer>(system, this)) {
  // A lock waiter that observes an expired lease recovers the dead holder
  // through this client's Recoverer before re-contending the lane.
  hocl_.set_recovery_hook(
      [this](uint16_t dead_tag) { return recoverer_->RecoverDeadOwner(dead_tag); });
  if (system->options().shape.varlen) {
    vlog_ = std::make_unique<vlog::VlogClient>(
        &system->fabric(), &allocator_, cs_id,
        system->options().vlog_segment_bytes);
  }
}

TreeClient::~TreeClient() = default;

const TreeOptions& TreeClient::opt() const { return system_->options_; }

rdma::Qp& TreeClient::QpFor(rdma::GlobalAddress addr) {
  return system_->fabric_.qp(cs_id_, addr.node);
}

sim::Task<Status> TreeClient::ReadRaw(rdma::GlobalAddress addr, uint8_t* buf,
                                      uint32_t len, OpStats* stats) {
  SHERMAN_TEVENT(stats != nullptr ? stats->trace : nullptr, "rdma.read", len,
                 addr.node);
  rdma::RdmaResult r =
      co_await QpFor(addr).Post(rdma::WorkRequest::Read(addr, buf, len));
  if (stats != nullptr) stats->round_trips++;
  co_return r.status;
}

bool TreeClient::NodeConsistent(const uint8_t* buf) const {
  NodeView view(const_cast<uint8_t*>(buf), &opt().shape);
  const bool ok = opt().consistency == TreeOptions::Consistency::kChecksum
                      ? view.VerifyChecksum()
                      : view.NodeVersionsMatch();
  // A passing version/checksum check is exactly what clears DMSan's
  // torn-read taint (rule V4) on this buffer.
  if (ok && dmsan::Active()) dmsan::NoteValidatedAll(buf, node_size());
  return ok;
}

void TreeClient::SealNode(NodeView& view, bool /*structural_change*/) const {
  if (opt().consistency == TreeOptions::Consistency::kChecksum) {
    view.UpdateChecksum();
  } else {
    view.BumpNodeVersions();
  }
}

sim::SimTime TreeClient::WrapGuardNs() const {
  // Wraparound guard threshold: a 4-bit version can only wrap after 16
  // writes, and every write of this node is lock-protected — at minimum a
  // lock CAS round trip plus a full node read before the write-back. A
  // read can therefore never legitimately be slower than 16 such cycles,
  // no matter how congested the fabric (congestion slows the writers at
  // least as much). The paper's 8 us constant is the idle-fabric floor.
  // Each write cycle includes a node-sized READ from the same MS, so
  // congestion inflates the writers at least as much as this reader; the
  // 4x margin covers reader-side-only queueing asymmetry.
  const rdma::FabricConfig& fcfg = system_->fabric_.config();
  const sim::SimTime rtt = 2 * fcfg.wire_latency_ns + 600;
  const sim::SimTime node_wire = static_cast<sim::SimTime>(
      node_size() / fcfg.link_bytes_per_ns);
  const sim::SimTime min_write_cycle = 2 * rtt + 2 * node_wire;
  return std::max<sim::SimTime>(opt().version_wrap_retry_ns,
                                16 * 4 * min_write_cycle);
}

sim::Task<Status> TreeClient::ReadNodeChecked(rdma::GlobalAddress addr,
                                              uint8_t* buf, OpStats* stats) {
  const TreeOptions& o = opt();
  sim::Simulator& sim = system_->fabric_.simulator();
  const sim::SimTime wrap_guard = WrapGuardNs();
  constexpr uint32_t kMaxWrapRetries = 16;
  uint32_t wrap_retries = 0;
  for (uint32_t i = 0; i < o.max_read_retries; i++) {
    const sim::SimTime start = sim.now();
    Status st = co_await ReadRaw(addr, buf, node_size(), stats);
    if (!st.ok()) co_return st;
    const sim::SimTime duration = sim.now() - start;
    if (!NodeConsistent(buf)) {
      if (stats != nullptr) stats->read_retries++;
      SHERMAN_TINSTANT(stats != nullptr ? stats->trace : nullptr,
                       "tree.read_retry");
      continue;
    }
    // 4-bit wraparound guard (§4.4): a read long enough to span a full
    // version cycle is retried even with matching versions. Re-reads are
    // bounded: a sustained slow-read condition (congestion) cannot hide a
    // wrap anyway — 16 lock-protected writes of one node take far longer
    // than any transient queueing spike — and unbounded retries here would
    // feed a metastable retry storm.
    if (o.consistency == TreeOptions::Consistency::kVersions &&
        duration > wrap_guard && wrap_retries < kMaxWrapRetries) {
      wrap_retries++;
      if (stats != nullptr) stats->read_retries++;
      continue;
    }
    co_return Status::OK();
  }
  co_return Status::TimedOut("node read retries exhausted");
}

sim::Task<Status> TreeClient::LoadRoot(OpStats* stats) {
  SHERMAN_TEVENT(stats != nullptr ? stats->trace : nullptr, "tree.load_root");
  uint8_t ptr_buf[8];
  Status st = co_await ReadRaw(rdma::GlobalAddress(0, kRootPointerOffset),
                               ptr_buf, sizeof(ptr_buf), stats);
  if (!st.ok()) co_return st;
  uint64_t packed;
  std::memcpy(&packed, ptr_buf, 8);
  const rdma::GlobalAddress root = rdma::GlobalAddress::FromU64(packed);
  SHERMAN_CHECK_MSG(!root.is_null(), "no root installed (bulk load missing?)");

  std::vector<uint8_t> buf(node_size());
  st = co_await ReadNodeChecked(root, buf.data(), stats);
  if (!st.ok()) co_return st;
  NodeView view(buf.data(), &opt().shape);
  root_addr_ = root;
  root_level_ = view.level();
  root_known_ = true;
  if (view.level() > 0 && opt().enable_cache) {
    ParsedInternal parsed;
    if (ParseInternal(buf.data(), opt().shape, root, &parsed).ok()) {
      cache_.Insert(parsed);
    }
  }
  co_return Status::OK();
}

sim::Task<Status> TreeClient::ReadInternalContaining(rdma::GlobalAddress addr,
                                                     Key key,
                                                     ParsedInternal* out,
                                                     OpStats* stats) {
  std::vector<uint8_t> buf(node_size());
  uint32_t rereads = 0;
  for (int chase = 0; chase < kMaxSiblingChase; chase++) {
    Status st = co_await ReadNodeChecked(addr, buf.data(), stats);
    if (!st.ok()) co_return st;
    {
      // A tombstoned internal node (migrated away; content intact, free
      // flag set) still parses, but following it would keep the caller on
      // the stale pre-migration path forever. Bounce to the caller so it
      // invalidates the cached pointer and re-resolves through the flipped
      // parent.
      NodeView peek(buf.data(), &opt().shape);
      if (peek.is_free()) co_return Status::Retry("freed internal node");
    }
    ParsedInternal parsed;
    st = ParseInternal(buf.data(), opt().shape, addr, &parsed);
    if (!st.ok()) {
      // Torn read (Retry) or stale pointer landing on garbage (Corruption):
      // re-read a few times, then hand the restart decision to the caller.
      if (stats != nullptr) stats->read_retries++;
      if (++rereads > 8) co_return Status::Retry("unparseable internal node");
      chase--;
      continue;
    }
    if (key < parsed.lo) co_return Status::Retry("fell left of node");
    if (key >= parsed.hi) {
      if (parsed.sibling.is_null()) {
        co_return Status::Retry("missing sibling during chase");
      }
      addr = parsed.sibling;
      continue;
    }
    *out = std::move(parsed);
    co_return Status::OK();
  }
  co_return Status::Retry("sibling chase bound exceeded");
}

sim::Task<StatusOr<rdma::GlobalAddress>> TreeClient::FindNodeAddr(
    Key key, uint8_t target_level, OpStats* stats) {
  const TreeOptions& o = opt();
  for (uint32_t attempt = 0; attempt < o.max_restarts; attempt++) {
    rdma::GlobalAddress addr;
    bool have_start = false;
    if (o.enable_cache) {
      const ParsedInternal* p = cache_.LookupUpper(key);
      if (p != nullptr && p->level > target_level) {
        if (p->level == target_level + 1) co_return p->ChildFor(key);
        addr = p->ChildFor(key);
        have_start = true;
      }
    }
    if (!have_start) {
      if (!root_known_) {
        Status st = co_await LoadRoot(stats);
        if (!st.ok()) co_return st;
      }
      if (root_level_ < target_level) {
        co_return Status::Internal("target level above root");
      }
      if (root_level_ == target_level) co_return root_addr_;
      addr = root_addr_;
    }

    bool restart = false;
    while (!restart) {
      ParsedInternal parsed;
      Status st = co_await ReadInternalContaining(addr, key, &parsed, stats);
      if (st.IsRetry()) {
        cache_.Invalidate(key, addr);
        // Drop any cached upper node that still steers this key to the dead
        // child: after a migration flip the live parent points at the copy,
        // but a stale cached parent would re-route us to the tombstone on
        // every restart.
        cache_.InvalidateUpperCovering(key, addr);
        // Refresh the root only when it is implicated or restarts repeat:
        // a stale root stays correct via sibling chases, and re-reading it
        // from every client on every invalidation would hammer its MS.
        if (addr == root_addr_ || attempt >= 2) root_known_ = false;
        restart = true;
        break;
      }
      if (!st.ok()) co_return st;
      if (o.enable_cache) cache_.Insert(parsed);
      if (parsed.level <= target_level) {
        // Stale starting point steered us too deep; restart from the root.
        cache_.Invalidate(key, parsed.self);
        if (attempt >= 2) root_known_ = false;
        restart = true;
        break;
      }
      if (parsed.level == target_level + 1) co_return parsed.ChildFor(key);
      addr = parsed.ChildFor(key);
    }
  }
  co_return Status::Internal("traversal restarts exhausted");
}

sim::Task<StatusOr<TreeClient::LeafRef>> TreeClient::FindLeafAddr(
    Key key, OpStats* stats, bool allow_hint) {
  const rdma::FabricConfig& f = system_->fabric_.config();
  co_await system_->fabric_.simulator().Delay(f.cpu_cache_lookup_ns);
  if (opt().enable_cache) {
    const ParsedInternal* p = cache_.LookupLevel1(key);
    if (p != nullptr) {
      if (stats != nullptr) stats->cache_hits++;
      SHERMAN_TINSTANT(stats != nullptr ? stats->trace : nullptr, "cache.hit");
      co_return LeafRef{p->ChildFor(key), true};
    }
    if (stats != nullptr) stats->cache_misses++;
    SHERMAN_TINSTANT(stats != nullptr ? stats->trace : nullptr, "cache.miss");
  }
  if (opt().enable_leaf_hints && allow_hint) {
    rdma::GlobalAddress hinted;
    if (co_await HintLeafAddr(key, &hinted, stats)) {
      SHERMAN_TINSTANT(stats != nullptr ? stats->trace : nullptr, "hint.hit");
      co_return LeafRef{hinted, false, true};
    }
  }
  SHERMAN_TEVENT(stats != nullptr ? stats->trace : nullptr, "tree.descend");
  StatusOr<rdma::GlobalAddress> r = co_await FindNodeAddr(key, 0, stats);
  if (!r.ok()) co_return r.status();
  co_return LeafRef{*r, false};
}

sim::Task<StatusOr<TreeClient::Locked>> TreeClient::LockAndRead(
    rdma::GlobalAddress addr, Key key, uint8_t* buf, OpStats* stats,
    uint8_t level) {
  const TreeOptions& o = opt();
  SHERMAN_TEVENT(stats != nullptr ? stats->trace : nullptr, "tree.lock_read",
                 level);
  for (int chase = 0; chase < kMaxSiblingChase; chase++) {
    LockGuard guard = co_await hocl_.Lock(addr, stats);
    Status st = co_await ReadRaw(addr, buf, node_size(), stats);
    SHERMAN_CHECK(st.ok());
    NodeView view(buf, &o.shape);
    const bool usable = !view.is_free() && view.level() == level;
    if (usable && view.InFence(key)) {
      co_return Locked{addr, guard};
    }
    const rdma::GlobalAddress next = (usable && key >= view.hi_fence())
                                         ? view.sibling()
                                         : rdma::kNullAddress;
    co_await hocl_.Unlock(guard, {}, o.combine_commands, stats);
    cache_.InvalidateLevel1Covering(key);
    if (next.is_null()) co_return Status::Retry("locked node unusable");
    addr = next;
  }
  co_return Status::Retry("locked sibling chase bound");
}

// --- Delete-path leaf merging (space reclamation) ---------------------------

bool TreeClient::SameLockLane(rdma::GlobalAddress a,
                              rdma::GlobalAddress b) const {
  if (a.is_null() || b.is_null()) return false;
  const bool onchip = opt().lock.onchip;
  const GlobalLockRef ra = LockFor(a, onchip);
  const GlobalLockRef rb = LockFor(b, onchip);
  return ra.ms == rb.ms && ra.index == rb.index && ra.space == rb.space;
}

sim::Task<StatusOr<TreeClient::SecondLocked>> TreeClient::LockSecondChasing(
    rdma::GlobalAddress addr, Key key, rdma::GlobalAddress held1,
    rdma::GlobalAddress held2, uint8_t* buf, OpStats* stats, uint8_t level) {
  const TreeOptions& o = opt();
  // Secondary locks are acquired with a BOUNDED TryLock, never a waiting
  // Lock: we already hold the leaf's lane (and possibly the sibling's),
  // and the finite lock table can hash another in-flight merge's held
  // lane onto the one we want — an unbounded wait there is a cross-agent
  // deadlock no local lane-ordering can prevent. Running out of attempts
  // aborts the (opportunistic) merge instead.
  constexpr uint32_t kTryLockAttempts = 16;
  for (int chase = 0; chase < kMaxSiblingChase; chase++) {
    const bool shared = SameLockLane(addr, held1) || SameLockLane(addr, held2);
    LockGuard guard;
    if (!shared) {
      const Status got =
          co_await hocl_.TryLock(addr, kTryLockAttempts, &guard, stats);
      if (got.IsLeaseSteal()) {
        // The holder is dead (TryLock does not recover inline — we hold
        // other locks here). Abort the protocol; the dead lane is
        // recovered by the next unbounded Lock() that lands on it.
        co_return Status::Retry("secondary lane held by a dead client");
      }
      if (!got.ok()) co_return Status::Retry("secondary lock contended");
    }
    Status st = co_await ReadRaw(addr, buf, node_size(), stats);
    SHERMAN_CHECK(st.ok());
    NodeView view(buf, &o.shape);
    const bool usable = !view.is_free() && view.level() == level;
    if (usable && view.InFence(key)) {
      co_return SecondLocked{addr, guard, !shared};
    }
    const rdma::GlobalAddress next = (usable && key >= view.hi_fence())
                                         ? view.sibling()
                                         : rdma::kNullAddress;
    if (!shared) co_await hocl_.Unlock(guard, {}, o.combine_commands, stats);
    if (next.is_null()) co_return Status::Retry("locked node unusable");
    addr = next;
  }
  co_return Status::Retry("locked sibling chase bound");
}

sim::Task<void> TreeClient::UnlockSecond(
    SecondLocked locked, std::vector<rdma::WorkRequest> write_backs,
    OpStats* stats) {
  if (locked.owned) {
    co_await hocl_.Unlock(locked.guard, std::move(write_backs),
                          opt().combine_commands, stats);
    co_return;
  }
  // Lane shared with a lock we still hold: the node stays protected; just
  // apply the write-backs.
  if (!write_backs.empty()) {
    rdma::RdmaResult r = co_await system_->fabric_
                             .qp(cs_id_, locked.addr.node)
                             .PostBatch(std::move(write_backs));
    if (stats != nullptr) stats->round_trips++;
    SHERMAN_CHECK(r.status.ok());
  }
}

bool TreeClient::MergeCandidate(const NodeView& view, uint32_t live) const {
  const TreeOptions& o = opt();
  if (o.merge_threshold <= 0) return false;
  // The leftmost leaf (lo fence 0) has no left sibling; a root leaf has
  // lo 0 too. Both are excluded, so merging never shrinks the tree height.
  if (!view.is_leaf() || view.is_free() || view.lo_fence() == 0) return false;
  if (o.shape.varlen) {
    // Byte-budget underflow: slotted leaves have no fixed entry capacity.
    return static_cast<double>(view.VarLiveBytes()) <
           o.merge_threshold * static_cast<double>(o.shape.var_usable_bytes());
  }
  return static_cast<double>(live) <
         o.merge_threshold * static_cast<double>(o.shape.leaf_capacity());
}

namespace {
// Deletes an aborted leaf waits before the next merge attempt, and the
// backoff map size cap (stale entries for recycled addresses only delay a
// fresh leaf's first merge by one window).
constexpr uint64_t kMergeBackoffDeletes = 32;
constexpr size_t kMergeBackoffCap = 4096;
}  // namespace

bool TreeClient::MergeBackoffExpired(rdma::GlobalAddress addr) {
  auto it = merge_backoff_.find(addr.ToU64());
  if (it == merge_backoff_.end()) return true;
  if (delete_ops_ < it->second) return false;
  merge_backoff_.erase(it);
  return true;
}

void TreeClient::RecordMergeAbort(rdma::GlobalAddress addr) {
  reclaim_stats_.merge_aborts++;
  if (merge_backoff_.size() >= kMergeBackoffCap) merge_backoff_.clear();
  merge_backoff_[addr.ToU64()] = delete_ops_ + kMergeBackoffDeletes;
}

// Merge protocol (holding the underflowed leaf L's lock throughout; lock
// order leaf -> left sibling -> parent. Deadlock safety does NOT rest on
// that ordering alone — the finite lock table can alias two agents' lock
// sets onto shared lanes, which no ordering rules out — but on bounded
// acquisition: both secondary locks are TryLocks that abort the merge
// when exhausted, so no agent ever waits unboundedly while holding a
// lane another agent needs):
//   1. resolve the level-1 parent covering L.lo lock-free and locate the
//      preceding child S (L must appear as an explicit (L.lo -> L) entry;
//      a leftmost child's separator lives a level up and is skipped);
//   2. lock S, verify it is still the direct left neighbor (hi == L.lo,
//      sibling == L) and that the survivors fit;
//   3. stage S' = S + survivors, hi fence = L.hi, sibling = L.sibling
//      (locally — nothing remote changes until every check passed);
//   4. lock the parent, re-verify the (L.lo -> L) entry, stage its
//      removal;
//   5. publish: tombstone L FIRST (readers bounce and re-traverse), then
//      the parent (fresh descents resolve [L.lo, L.hi) to S's entry),
//      then S' (the B-link chain absorbs the range) — see the step-5
//      comment in the body for why this exact order is load-bearing;
//   6. park L on its MS's epoch-keyed grace list: the bytes stay a stable
//      tombstone until every op pinned at or before the free retires.
// Any verification failure releases the secondary locks and reports
// false with no remote state changed; the caller falls back to the plain
// entry write-back (the delete itself has already been staged locally).
sim::Task<bool> TreeClient::TryMergeLeafLocked(const Locked& locked,
                                               uint8_t* buf, OpStats* stats) {
  SHERMAN_TEVENT(stats != nullptr ? stats->trace : nullptr, "tree.merge_leaf");
  const TreeOptions& o = opt();
  NodeView view(buf, &o.shape);
  const Key lo = view.lo_fence();
  const Key hi = view.hi_fence();
  SHERMAN_CHECK(lo != 0);

  // 1. Locate parent + left sibling lock-free.
  StatusOr<rdma::GlobalAddress> pr = co_await FindNodeAddr(lo, 1, stats);
  if (!pr.ok()) {
    RecordMergeAbort(locked.addr);
    co_return false;
  }
  ParsedInternal parent;
  Status st = co_await ReadInternalContaining(*pr, lo, &parent, stats);
  if (!st.ok() || parent.level != 1) {
    RecordMergeAbort(locked.addr);
    co_return false;
  }
  size_t ei = SIZE_MAX;
  for (size_t i = 0; i < parent.entries.size(); i++) {
    if (parent.entries[i].first == lo &&
        parent.entries[i].second == locked.addr) {
      ei = i;
      break;
    }
  }
  if (ei == SIZE_MAX) {  // leftmost child of its parent, or a stale parse
    RecordMergeAbort(locked.addr);
    co_return false;
  }
  const rdma::GlobalAddress s_hint =
      ei == 0 ? parent.leftmost : parent.entries[ei - 1].second;
  if (s_hint.is_null()) {
    RecordMergeAbort(locked.addr);
    co_return false;
  }

  // 2. Lock the left sibling (chasing splits; lane-aware vs L's lock).
  std::vector<uint8_t> sbuf(node_size());
  StatusOr<SecondLocked> sl = co_await LockSecondChasing(
      s_hint, lo - 1, locked.addr, rdma::kNullAddress, sbuf.data(), stats,
      /*level=*/0);
  if (!sl.ok()) {
    RecordMergeAbort(locked.addr);
    co_return false;
  }
  SecondLocked sib = *sl;
  NodeView sview(sbuf.data(), &o.shape);

  const uint32_t l_live = view.LiveLeafEntries(o.two_level_versions);
  bool ok = sview.is_leaf() && !sview.is_free() && sview.hi_fence() == lo &&
            sview.sibling() == locked.addr;
  if (ok) {
    // Anti-thrash headroom: a merge whose result is nearly full would be
    // split right back apart by the next inserts, paying both structural
    // ops for nothing. Require the merged leaf to keep a quarter of its
    // capacity free; drained chains (the reclamation target) pass easily.
    if (o.shape.varlen) {
      ok = VarLeafFits(sview, view) &&
           (sview.VarLiveBytes() + view.VarLiveBytes()) * 4 <=
               3 * o.shape.var_usable_bytes();
    } else {
      const uint32_t s_live = sview.LiveLeafEntries(o.two_level_versions);
      ok = s_live + l_live <= 3 * o.shape.leaf_capacity() / 4;
    }
  }
  if (!ok) {
    co_await UnlockSecond(sib, {}, stats);
    RecordMergeAbort(locked.addr);
    co_return false;
  }

  // 3. Stage the widened sibling.
  const rdma::FabricConfig& f = system_->fabric_.config();
  co_await system_->fabric_.simulator().Delay(f.cpu_node_sort_ns);
  if (o.shape.varlen) {
    MoveVarLeafEntries(&sview, view);
  } else {
    MoveLeafEntries(&sview, view, o.two_level_versions);
  }
  sview.set_hi_fence(hi);
  sview.set_sibling(view.sibling());
  SealNode(sview, /*structural_change=*/true);

  // 4. Lock the parent and re-verify under the lock (it may have split or
  // been rewritten since the lock-free read).
  std::vector<uint8_t> pbuf(node_size());
  StatusOr<SecondLocked> pl = co_await LockSecondChasing(
      parent.self, lo, locked.addr, sib.addr, pbuf.data(), stats,
      /*level=*/1);
  if (!pl.ok()) {
    co_await UnlockSecond(sib, {}, stats);
    RecordMergeAbort(locked.addr);
    co_return false;
  }
  SecondLocked par = *pl;
  NodeView pview(pbuf.data(), &o.shape);
  if (pview.is_free() || pview.level() != 1 ||
      !pview.InternalRemove(lo, locked.addr)) {
    co_await UnlockSecond(par, {}, stats);
    co_await UnlockSecond(sib, {}, stats);
    RecordMergeAbort(locked.addr);
    co_return false;
  }
  SealNode(pview, /*structural_change=*/true);

  // 5. Every verification passed; nothing remote has changed yet, and from
  // here the merge cannot fail. First anchor the op: publish the intent
  // record (one awaited WRITE to MS 0) so a crash anywhere in the publish
  // sequence below is recoverable — the tombstone is the commit point a
  // survivor's Recoverer keys its replay/rollback decision on. Then
  // publish in the migration's safety order: tombstone L FIRST (readers
  // holding its address bounce and re-traverse — they spin for the couple
  // of round trips until the repair lands, the same window MoveLockedNode
  // accepts), then the parent (descents now bypass L), then the widened
  // sibling (the B-link chain absorbs the range). Tombstoning before
  // [lo, hi) becomes writable through S' closes the stale-read window:
  // nobody can serve L's frozen content after a newer write lands on the
  // live copy. The release order (par, then sib, then L) keeps every
  // write under a still-held lane even when the finite lock table aliases
  // two of the three locks onto one lane. Sequential awaits give the
  // cross-MS ordering; the parent and sibling writes ride their lock
  // releases. The free and the intent clear happen BEFORE L's lane is
  // released, so every crash window leaves either the intent or a held
  // lane (usually both) for a survivor to find.
  recover::IntentRecord rec;
  rec.op = recover::IntentOp::kMerge;
  rec.level = 0;
  rec.lo = lo;
  rec.hi = hi;
  rec.primary = locked.addr;
  rec.second = sib.addr;
  rec.parent = par.addr;
  const int intent_slot = co_await intents_.Publish(rec, stats);
  co_await fault::Injector().AtSite(kCrashMergeIntent, cs_id_);

  view.set_free(true);
  if (o.consistency == TreeOptions::Consistency::kChecksum) {
    view.UpdateChecksum();
  }
  {
    rdma::WorkRequest tomb =
        rdma::WorkRequest::Write(locked.addr, buf, node_size());
    tomb.intent_slot = static_cast<uint8_t>(intent_slot);
    rdma::RdmaResult w = co_await QpFor(locked.addr).Post(tomb);
    if (stats != nullptr) stats->round_trips++;
    SHERMAN_CHECK(w.status.ok());
  }
  co_await fault::Injector().AtSite(kCrashMergeTombstone, cs_id_);
  {
    std::vector<rdma::WorkRequest> wrs;
    wrs.push_back(
        rdma::WorkRequest::Write(par.addr, pbuf.data(), node_size()));
    wrs.back().intent_slot = static_cast<uint8_t>(intent_slot);
    co_await UnlockSecond(par, std::move(wrs), stats);
  }
  co_await fault::Injector().AtSite(kCrashMergeParent, cs_id_);
  {
    std::vector<rdma::WorkRequest> wrs;
    wrs.push_back(
        rdma::WorkRequest::Write(sib.addr, sbuf.data(), node_size()));
    wrs.back().intent_slot = static_cast<uint8_t>(intent_slot);
    co_await UnlockSecond(sib, std::move(wrs), stats);
  }
  co_await fault::Injector().AtSite(kCrashMergeSibling, cs_id_);
  if (stats != nullptr) stats->bytes_written += 3ull * node_size();

  // 6. Drop any hint entry pointing at the doomed leaf BEFORE the free
  // (same RPC lane, so the MS orders them; DMSan rule V6 enforces it),
  // then park the leaf on its MS's grace list (recycled only after every
  // op pinned at or before this free has retired), clear the intent, and
  // only then release L's lane.
  co_await HintInvalidate(locked.addr, stats);
  co_await system_->fabric_.qp(cs_id_, locked.addr.node)
      .Rpc(kRpcFreeNode, locked.addr.offset, node_size());
  if (stats != nullptr) stats->round_trips++;
  co_await fault::Injector().AtSite(kCrashMergeFreed, cs_id_);
  intents_.ClearAsync(intent_slot);
  co_await hocl_.Unlock(locked.guard, {}, o.combine_commands, stats);
  reclaim_stats_.nodes_freed++;
  reclaim_stats_.leaf_merges++;

  // Our cached parse of the parent still routes [lo, hi) to the tombstone.
  cache_.InvalidateLevel1Covering(lo);
  if (o.enable_cache) {
    ParsedInternal fresh;
    if (ParseInternal(pbuf.data(), o.shape, par.addr, &fresh).ok()) {
      cache_.Insert(fresh);
    }
  }
  co_return true;
}

// --- Insert ---------------------------------------------------------------

sim::Task<Status> TreeClient::Insert(Key key, uint64_t value, OpStats* stats) {
  SHERMAN_CHECK(key != kNullKey && key != kMaxKey);
  const TreeOptions& o = opt();
  const rdma::FabricConfig& f = system_->fabric_.config();
  EpochPin pin(&system_->reclaim_, cs_id_);
  co_await system_->fabric_.simulator().Delay(f.cpu_op_overhead_ns);

  for (uint32_t attempt = 0; attempt < o.max_restarts; attempt++) {
    StatusOr<LeafRef> leaf_r =
        co_await FindLeafAddr(key, stats, /*allow_hint=*/attempt == 0);
    if (!leaf_r.ok()) co_return leaf_r.status();

    std::vector<uint8_t> buf(node_size());
    StatusOr<Locked> locked_r =
        co_await LockAndRead(leaf_r->addr, key, buf.data(), stats);
    if (!locked_r.ok()) {
      if (locked_r.status().IsRetry()) {
        // A hinted address that went dead-end must leave the mirror, or
        // every subsequent restart re-serves it.
        if (leaf_r->via_hint) NoteHintStale(key);
        // Repeated dead ends mean even a fresh resolution keeps steering
        // here — the classic case is a cached root that was still a leaf
        // (or since-merged node) when this client loaded it, which
        // FindNodeAddr's root shortcut returns forever. Refresh it.
        if (attempt >= 2) root_known_ = false;
        continue;
      }
      co_return locked_r.status();
    }
    Locked locked = *locked_r;
    NodeView view(buf.data(), &o.shape);

    if (o.two_level_versions) {
      // Unsorted leaf: update in place or fill an empty slot; only the
      // touched entry is written back (Figure 7, lines 11-17).
      co_await system_->fabric_.simulator().Delay(f.cpu_leaf_scan_ns);
      NodeView::SlotResult slot = view.FindLeafSlot(key);
      const uint32_t i = slot.match != UINT32_MAX ? slot.match : slot.empty;
      if (i != UINT32_MAX) {
        view.SetLeafEntry(i, key, value);
        const uint32_t off = view.LeafEntryOffset(i);
        const uint32_t entry_size = o.shape.leaf_entry_size();
        if (stats != nullptr) stats->bytes_written += entry_size;
        std::vector<rdma::WorkRequest> wrs;
        wrs.push_back(rdma::WorkRequest::Write(locked.addr.Plus(off),
                                               buf.data() + off, entry_size));
        co_await hocl_.Unlock(locked.guard, std::move(wrs),
                              o.combine_commands, stats);
        co_return Status::OK();
      }
    } else {
      // Sorted leaf (FG): shift-insert locally, write back the whole node.
      co_await system_->fabric_.simulator().Delay(f.cpu_node_search_ns);
      if (view.SortedLeafInsert(key, value)) {
        SealNode(view, /*structural_change=*/false);
        if (stats != nullptr) stats->bytes_written += node_size();
        std::vector<rdma::WorkRequest> wrs;
        wrs.push_back(
            rdma::WorkRequest::Write(locked.addr, buf.data(), node_size()));
        co_await hocl_.Unlock(locked.guard, std::move(wrs),
                              o.combine_commands, stats);
        co_return Status::OK();
      }
    }
    co_return co_await SplitLeafAndUnlock(locked, std::move(buf), key, value,
                                          stats);
  }
  co_return Status::Internal("insert restarts exhausted");
}

sim::Task<Status> TreeClient::SplitLeafAndUnlock(Locked locked,
                                                 std::vector<uint8_t> buf,
                                                 Key key, uint64_t value,
                                                 OpStats* stats) {
  SHERMAN_TEVENT(stats != nullptr ? stats->trace : nullptr, "tree.split_leaf");
  const TreeOptions& o = opt();
  const rdma::FabricConfig& f = system_->fabric_.config();
  NodeView view(buf.data(), &o.shape);
  co_await system_->fabric_.simulator().Delay(f.cpu_node_sort_ns);

  // Collect live entries (+ the new pair), sorted (Figure 7, line 21).
  std::vector<std::pair<Key, uint64_t>> entries;
  if (o.two_level_versions) {
    const uint32_t cap = o.shape.leaf_capacity();
    for (uint32_t i = 0; i < cap; i++) {
      const Key k = view.LeafKey(i);
      if (k != kNullKey) entries.emplace_back(k, view.LeafValue(i));
    }
  } else {
    const uint32_t n = view.count();
    for (uint32_t i = 0; i < n; i++) {
      entries.emplace_back(view.LeafKey(i), view.LeafValue(i));
    }
  }
  bool replaced = false;
  for (auto& e : entries) {
    if (e.first == key) {
      e.second = value;
      replaced = true;
      break;
    }
  }
  if (!replaced) entries.emplace_back(key, value);
  std::sort(entries.begin(), entries.end());

  // Allocate the sibling (may RPC a memory thread; Figure 7, line 20).
  const rdma::GlobalAddress sib_addr =
      co_await allocator_.Alloc(node_size());
  if (sib_addr.is_null()) {
    co_await hocl_.Unlock(locked.guard, {}, o.combine_commands, stats);
    co_return Status::OutOfMemory("disaggregated memory exhausted");
  }

  const size_t mid = entries.size() / 2;
  const Key split_key = entries[mid].first;
  const Key old_lo = view.lo_fence();
  const Key old_hi = view.hi_fence();
  const rdma::GlobalAddress old_sibling = view.sibling();
  const uint8_t new_version = (view.front_version() + 1) & 0xf;

  // Anchor the split before its first remote write: a crash between the
  // writes below is replayed (commit batch landed: finish the ascent) or
  // rolled back (retire the unpublished sibling) from this record.
  recover::IntentRecord intent;
  intent.op = recover::IntentOp::kSplit;
  intent.level = 0;
  intent.lo = old_lo;
  intent.hi = old_hi;
  intent.primary = locked.addr;
  intent.second = sib_addr;
  intent.aux = split_key;
  const int intent_slot = co_await intents_.Publish(intent, stats);
  co_await fault::Injector().AtSite(kCrashSplitIntent, cs_id_);

  // Build the sibling: upper half, fences [split_key, old_hi).
  std::vector<uint8_t> sib_buf(node_size());
  NodeView sib(sib_buf.data(), &o.shape);
  sib.InitLeaf(split_key, old_hi, old_sibling);
  for (size_t j = mid; j < entries.size(); j++) {
    sib.SetLeafEntryRaw(static_cast<uint32_t>(j - mid), entries[j].first,
                        entries[j].second);
  }
  if (!o.two_level_versions) {
    sib.set_count(static_cast<uint16_t>(entries.size() - mid));
  }
  if (o.consistency == TreeOptions::Consistency::kChecksum) {
    sib.UpdateChecksum();
  }

  // Rebuild this node: lower half, fences [old_lo, split_key), sibling ->
  // the new node; node-level versions bump (Figure 7, lines 26-28).
  view.InitLeaf(old_lo, split_key, sib_addr);
  for (size_t j = 0; j < mid; j++) {
    view.SetLeafEntryRaw(static_cast<uint32_t>(j), entries[j].first,
                         entries[j].second);
  }
  if (!o.two_level_versions) view.set_count(static_cast<uint16_t>(mid));
  buf[kOffFnv] = new_version;
  buf[o.shape.node_size - 1] = new_version;
  if (o.consistency == TreeOptions::Consistency::kChecksum) {
    view.UpdateChecksum();
  }
  if (stats != nullptr) stats->bytes_written += 2ull * node_size();

  // Write back. If the sibling landed on the same MS the three commands
  // (sibling, node, lock release) combine into one doorbell batch (§4.5)
  // — crash-safe under fail-stop, because a POSTED batch completes at the
  // NIC whether or not the client survives it, so the remote states are
  // exactly {nothing, committed}. A cross-MS sibling needs its own
  // awaited WRITE, adding the sibling-only crash state.
  std::vector<rdma::WorkRequest> wrs;
  if (sib_addr.node == locked.addr.node) {
    wrs.push_back(
        rdma::WorkRequest::Write(sib_addr, sib_buf.data(), node_size()));
    wrs.back().intent_slot = static_cast<uint8_t>(intent_slot);
  } else {
    rdma::WorkRequest sw =
        rdma::WorkRequest::Write(sib_addr, sib_buf.data(), node_size());
    sw.intent_slot = static_cast<uint8_t>(intent_slot);
    rdma::RdmaResult r = co_await QpFor(sib_addr).Post(sw);
    if (stats != nullptr) stats->round_trips++;
    SHERMAN_CHECK(r.status.ok());
    co_await fault::Injector().AtSite(kCrashSplitSibling, cs_id_);
  }
  wrs.push_back(rdma::WorkRequest::Write(locked.addr, buf.data(), node_size()));
  wrs.back().intent_slot = static_cast<uint8_t>(intent_slot);
  co_await hocl_.Unlock(locked.guard, std::move(wrs), o.combine_commands,
                        stats);
  // The commit write has applied (the await covers it): the sibling is now
  // reachable through the B-link chain, so its shadow flips private->live.
  if (dmsan::Active()) {
    if (dmsan::Checker* dc = dmsan::Find(&system_->fabric_.simulator())) {
      dc->PublishNode(sib_addr, /*level=*/0);
    }
  }
  co_await fault::Injector().AtSite(kCrashSplitLeaf, cs_id_);

  // Ascend: insert the separator into the parent level (Figure 7, line 39).
  Status st = co_await InsertInternal(split_key, sib_addr,
                                      static_cast<uint8_t>(view.level() + 1),
                                      stats);
  co_await fault::Injector().AtSite(kCrashSplitLinked, cs_id_);
  intents_.ClearAsync(intent_slot);
  // Advertise the new sibling to the hint sidecar. Purely advisory and
  // after the intent clears: a crash mid-publish leaves a fully committed
  // split whose sibling is simply not hinted yet. The left leaf's entry
  // stays valid (same address, same lo fence).
  co_await HintPublish(sib_addr, split_key, stats);
  co_return st;
}

sim::Task<Status> TreeClient::InsertInternal(Key sep,
                                             rdma::GlobalAddress child,
                                             uint8_t level, OpStats* stats) {
  const TreeOptions& o = opt();
  const rdma::FabricConfig& f = system_->fabric_.config();

  for (uint32_t attempt = 0; attempt < o.max_restarts; attempt++) {
    if (!root_known_) {
      Status st = co_await LoadRoot(stats);
      if (!st.ok()) co_return st;
    }
    if (root_level_ < level) {
      Status st = co_await MakeNewRoot(sep, child, level, stats);
      if (st.IsRetry()) continue;  // lost the root CAS; root refreshed
      co_return st;
    }

    StatusOr<rdma::GlobalAddress> addr_r =
        co_await FindNodeAddr(sep, level, stats);
    if (!addr_r.ok()) co_return addr_r.status();

    std::vector<uint8_t> buf(node_size());
    StatusOr<Locked> locked_r =
        co_await LockAndRead(*addr_r, sep, buf.data(), stats, level);
    if (!locked_r.ok()) {
      if (locked_r.status().IsRetry()) {
        // The node FindNodeAddr resolved is unusable (tombstoned by a
        // migration, or a dead-end chase). If a cached upper node supplied
        // that stale pointer, it must go, or every restart loops back here.
        cache_.InvalidateUpperCovering(sep, *addr_r);
        continue;
      }
      co_return locked_r.status();
    }
    Locked locked = *locked_r;
    NodeView view(buf.data(), &o.shape);
    SHERMAN_CHECK_MSG(view.level() == level, "locked level %u, wanted %u",
                      view.level(), level);

    co_await system_->fabric_.simulator().Delay(f.cpu_node_search_ns);
    if (view.InternalInsert(sep, child)) {
      SealNode(view, /*structural_change=*/true);
      if (stats != nullptr) stats->bytes_written += node_size();
      std::vector<rdma::WorkRequest> wrs;
      wrs.push_back(
          rdma::WorkRequest::Write(locked.addr, buf.data(), node_size()));
      co_await hocl_.Unlock(locked.guard, std::move(wrs), o.combine_commands,
                            stats);
      co_return Status::OK();
    }

    // Internal split: promote the middle separator (it moves up, unlike a
    // leaf split).
    co_await system_->fabric_.simulator().Delay(f.cpu_node_sort_ns);
    std::vector<std::pair<Key, rdma::GlobalAddress>> ents;
    const uint32_t n = view.count();
    ents.reserve(n + 1);
    for (uint32_t i = 0; i < n; i++) {
      ents.emplace_back(view.InternalKey(i), view.InternalChild(i));
    }
    ents.emplace_back(sep, child);
    std::sort(ents.begin(), ents.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    const rdma::GlobalAddress right_addr =
        co_await allocator_.Alloc(node_size());
    if (right_addr.is_null()) {
      co_await hocl_.Unlock(locked.guard, {}, o.combine_commands, stats);
      co_return Status::OutOfMemory("disaggregated memory exhausted");
    }

    const size_t mid = ents.size() / 2;
    const Key promote = ents[mid].first;
    const Key old_lo = view.lo_fence();
    const Key old_hi = view.hi_fence();
    const rdma::GlobalAddress old_sibling = view.sibling();
    const rdma::GlobalAddress old_leftmost = view.leftmost_child();
    const uint8_t new_version = (view.front_version() + 1) & 0xf;

    // Internal splits get their own intent (same record shape as a leaf
    // split; the level disambiguates): a crashed half-split internal is
    // B-link-legal but its unpublished right node would leak and its
    // promoted separator would never reach level+1.
    recover::IntentRecord intent;
    intent.op = recover::IntentOp::kSplit;
    intent.level = level;
    intent.lo = old_lo;
    intent.hi = old_hi;
    intent.primary = locked.addr;
    intent.second = right_addr;
    intent.aux = promote;
    const int intent_slot = co_await intents_.Publish(intent, stats);
    co_await fault::Injector().AtSite(kCrashIsplitIntent, cs_id_);

    std::vector<uint8_t> right_buf(node_size());
    NodeView right(right_buf.data(), &o.shape);
    right.InitInternal(level, promote, old_hi, old_sibling,
                       /*leftmost=*/ents[mid].second);
    for (size_t j = mid + 1; j < ents.size(); j++) {
      right.SetInternalEntry(static_cast<uint32_t>(j - mid - 1),
                             ents[j].first, ents[j].second);
    }
    right.set_count(static_cast<uint16_t>(ents.size() - mid - 1));
    if (o.consistency == TreeOptions::Consistency::kChecksum) {
      right.UpdateChecksum();
    }

    view.InitInternal(level, old_lo, promote, right_addr, old_leftmost);
    for (size_t j = 0; j < mid; j++) {
      view.SetInternalEntry(static_cast<uint32_t>(j), ents[j].first,
                            ents[j].second);
    }
    view.set_count(static_cast<uint16_t>(mid));
    buf[kOffFnv] = new_version;
    buf[o.shape.node_size - 1] = new_version;
    if (o.consistency == TreeOptions::Consistency::kChecksum) {
      view.UpdateChecksum();
    }
    if (stats != nullptr) stats->bytes_written += 2ull * node_size();

    // Same-MS right nodes ride the commit batch; cross-MS ones publish
    // with their own awaited WRITE — see the leaf split's rationale.
    std::vector<rdma::WorkRequest> wrs;
    if (right_addr.node == locked.addr.node) {
      wrs.push_back(
          rdma::WorkRequest::Write(right_addr, right_buf.data(), node_size()));
      wrs.back().intent_slot = static_cast<uint8_t>(intent_slot);
    } else {
      rdma::WorkRequest rw =
          rdma::WorkRequest::Write(right_addr, right_buf.data(), node_size());
      rw.intent_slot = static_cast<uint8_t>(intent_slot);
      rdma::RdmaResult r = co_await QpFor(right_addr).Post(rw);
      if (stats != nullptr) stats->round_trips++;
      SHERMAN_CHECK(r.status.ok());
      co_await fault::Injector().AtSite(kCrashIsplitRight, cs_id_);
    }
    wrs.push_back(
        rdma::WorkRequest::Write(locked.addr, buf.data(), node_size()));
    wrs.back().intent_slot = static_cast<uint8_t>(intent_slot);
    co_await hocl_.Unlock(locked.guard, std::move(wrs), o.combine_commands,
                          stats);
    if (dmsan::Active()) {
      if (dmsan::Checker* dc = dmsan::Find(&system_->fabric_.simulator())) {
        dc->PublishNode(right_addr, level);
      }
    }
    co_await fault::Injector().AtSite(kCrashIsplitCommit, cs_id_);

    Status st = co_await InsertInternal(promote, right_addr,
                                        static_cast<uint8_t>(level + 1),
                                        stats);
    co_await fault::Injector().AtSite(kCrashIsplitLinked, cs_id_);
    intents_.ClearAsync(intent_slot);
    co_return st;
  }
  co_return Status::Internal("internal insert restarts exhausted");
}

sim::Task<Status> TreeClient::MakeNewRoot(Key sep, rdma::GlobalAddress child,
                                          uint8_t level, OpStats* stats) {
  SHERMAN_TEVENT(stats != nullptr ? stats->trace : nullptr, "tree.new_root",
                 level);
  const TreeOptions& o = opt();
  const rdma::GlobalAddress old_root = root_addr_;

  const rdma::GlobalAddress addr = co_await allocator_.Alloc(node_size());
  if (addr.is_null()) co_return Status::OutOfMemory();

  // The root-pointer CAS is the commit point; the intent only tracks the
  // staged node so a crash before (or a lost race at) the CAS cannot leak
  // it. Recovery decides by walking the leftmost spine: the staged node
  // is reachable iff the CAS won.
  recover::IntentRecord intent;
  intent.op = recover::IntentOp::kRoot;
  intent.level = level;
  intent.hi = kMaxKey;
  intent.primary = addr;
  const int intent_slot = co_await intents_.Publish(intent, stats);

  std::vector<uint8_t> buf(node_size());
  NodeView view(buf.data(), &o.shape);
  view.InitInternal(level, 0, kMaxKey, rdma::kNullAddress,
                    /*leftmost=*/old_root);
  SHERMAN_CHECK(view.InternalInsert(sep, child));
  if (o.consistency == TreeOptions::Consistency::kChecksum) {
    view.UpdateChecksum();
  }

  rdma::WorkRequest stage =
      rdma::WorkRequest::Write(addr, buf.data(), node_size());
  stage.intent_slot = static_cast<uint8_t>(intent_slot);
  rdma::RdmaResult w = co_await QpFor(addr).Post(stage);
  if (stats != nullptr) stats->round_trips++;
  SHERMAN_CHECK(w.status.ok());
  co_await fault::Injector().AtSite(kCrashSplitRoot, cs_id_);

  // Publish via CAS on the meta root pointer.
  uint64_t fetched = 0;
  rdma::WorkRequest root_cas =
      rdma::WorkRequest::Cas(rdma::GlobalAddress(0, kRootPointerOffset),
                             old_root.ToU64(), addr.ToU64(), &fetched);
  root_cas.origin = rdma::kWrOriginRoot;  // the blessed root-swap path
  rdma::RdmaResult c =
      co_await system_->fabric_.qp(cs_id_, 0).Post(root_cas);
  if (stats != nullptr) stats->round_trips++;
  SHERMAN_CHECK(c.status.ok());
  if (!c.cas_success) {
    // Clear the intent BEFORE the local free: the freed address can be
    // handed to another thread of this client immediately, and a stale
    // intent naming a reused address would make recovery retire a node
    // someone else published. ClearAsync posts its WRITE synchronously,
    // which is ordering enough — posted work completes even if this
    // client dies before the completion.
    intents_.ClearAsync(intent_slot);
    allocator_.Free(addr, node_size());
    root_known_ = false;  // someone else grew the tree
    co_return Status::Retry("root CAS lost");
  }
  root_addr_ = addr;
  root_level_ = level;
  root_known_ = true;
  if (dmsan::Active()) {
    if (dmsan::Checker* dc = dmsan::Find(&system_->fabric_.simulator())) {
      dc->PublishNode(addr, level);
    }
  }
  if (o.enable_cache) {
    ParsedInternal parsed;
    if (ParseInternal(buf.data(), o.shape, addr, &parsed).ok()) {
      cache_.Insert(parsed);
    }
  }
  intents_.ClearAsync(intent_slot);
  co_return Status::OK();
}

// --- Lookup ----------------------------------------------------------------

sim::Task<Status> TreeClient::Lookup(Key key, uint64_t* value,
                                     OpStats* stats) {
  SHERMAN_CHECK(key != kNullKey && key != kMaxKey);
  const TreeOptions& o = opt();
  const rdma::FabricConfig& f = system_->fabric_.config();
  EpochPin pin(&system_->reclaim_, cs_id_);
  co_await system_->fabric_.simulator().Delay(f.cpu_op_overhead_ns);

  std::vector<uint8_t> buf(node_size());
  rdma::GlobalAddress probe_addr;  // last tombstone this lookup bounced off
  for (uint32_t attempt = 0; attempt < o.max_restarts; attempt++) {
    StatusOr<LeafRef> leaf_r =
        co_await FindLeafAddr(key, stats, /*allow_hint=*/attempt == 0);
    if (!leaf_r.ok()) co_return leaf_r.status();
    rdma::GlobalAddress addr = leaf_r->addr;

    bool restart = false;
    uint32_t entry_retries = 0;
    for (int chase = 0; chase < kMaxSiblingChase && !restart; chase++) {
      Status st = co_await ReadNodeChecked(addr, buf.data(), stats);
      if (!st.ok()) co_return st;
      NodeView view(buf.data(), &o.shape);
      if (view.is_free() || !view.is_leaf() || key < view.lo_fence()) {
        cache_.InvalidateLevel1Covering(key);
        // A hinted leaf that was merged, migrated, or recycled into a
        // different role: drop the mirror entry and fall back to a full
        // traversal — the hint is never trusted past validation.
        if (leaf_r->via_hint && chase == 0) NoteHintStale(key);
        if (view.is_free()) probe_addr = addr;
        if (attempt >= 2) root_known_ = false;  // stale root (see Insert)
        restart = true;
        break;
      }
      if (key >= view.hi_fence()) {
        cache_.InvalidateLevel1Covering(key);
        // Valid hinted leaf, but the key split off to its right since the
        // mirror was fetched; the B-link chase below still serves it.
        if (leaf_r->via_hint && chase == 0) NoteHintChase();
        if (view.sibling().is_null()) {
          restart = true;
          break;
        }
        addr = view.sibling();
        continue;
      }
      if (o.two_level_versions) {
        // Unsorted leaf: full scan, then the entry-level check (Figure 9).
        co_await system_->fabric_.simulator().Delay(f.cpu_leaf_scan_ns);
        NodeView::SlotResult slot = view.FindLeafSlot(key);
        if (slot.match == UINT32_MAX) co_return Status::NotFound();
        if (!view.LeafEntryVersionsMatch(slot.match)) {
          if (stats != nullptr) stats->read_retries++;
          if (++entry_retries > o.max_read_retries) {
            co_return Status::TimedOut("entry version retries exhausted");
          }
          chase--;  // re-read the same leaf
          continue;
        }
        *value = view.LeafValue(slot.match);
        co_return Status::OK();
      }
      co_await system_->fabric_.simulator().Delay(f.cpu_node_search_ns);
      const uint32_t i = view.SortedLeafFind(key);
      if (i == UINT32_MAX) co_return Status::NotFound();
      *value = view.LeafValue(i);
      co_return Status::OK();
    }
    // Chase bound exhausted: a stale translation steered us far left of
    // the key (heavy split/merge churn since it was cached). The chase
    // already invalidated it, so a restart resolves freshly — failing the
    // op here would surface a spurious error for a live key.
    if (!restart) {
      // A hinted start that needed > kMaxSiblingChase hops was not the
      // key's leaf at all (mirror predecessor across a hint-table hole):
      // drop the entry so later ops stop re-serving it.
      if (leaf_r->via_hint) NoteHintStale(key);
      if (attempt >= 2) root_known_ = false;
    }
    // Repeated bounces off the same tombstone mean the structural op that
    // planted it may have died with its client; probe its lock so a dead
    // holder's lease expiry is noticed and recovered (see
    // ProbeLockForRecovery).
    if (!probe_addr.is_null() && (attempt & 7) == 7) {
      co_await ProbeLockForRecovery(probe_addr, stats);
      probe_addr = rdma::GlobalAddress();
    }
  }
  co_return Status::Internal("lookup restarts exhausted");
}

// --- Delete ----------------------------------------------------------------

sim::Task<Status> TreeClient::Delete(Key key, OpStats* stats) {
  SHERMAN_CHECK(key != kNullKey && key != kMaxKey);
  const TreeOptions& o = opt();
  const rdma::FabricConfig& f = system_->fabric_.config();
  EpochPin pin(&system_->reclaim_, cs_id_);
  co_await system_->fabric_.simulator().Delay(f.cpu_op_overhead_ns);

  for (uint32_t attempt = 0; attempt < o.max_restarts; attempt++) {
    StatusOr<LeafRef> leaf_r =
        co_await FindLeafAddr(key, stats, /*allow_hint=*/attempt == 0);
    if (!leaf_r.ok()) co_return leaf_r.status();

    std::vector<uint8_t> buf(node_size());
    StatusOr<Locked> locked_r =
        co_await LockAndRead(leaf_r->addr, key, buf.data(), stats);
    if (!locked_r.ok()) {
      if (locked_r.status().IsRetry()) {
        if (leaf_r->via_hint) NoteHintStale(key);  // see Insert
        if (attempt >= 2) root_known_ = false;  // stale root (see Insert)
        continue;
      }
      co_return locked_r.status();
    }
    Locked locked = *locked_r;
    NodeView view(buf.data(), &o.shape);

    std::vector<rdma::WorkRequest> wrs;
    uint64_t write_bytes = 0;
    uint32_t live = 0;
    if (o.two_level_versions) {
      // Clear the entry (key = null) and bump its versions (§4.4,
      // "Delete operation"); only the entry is written back.
      co_await system_->fabric_.simulator().Delay(f.cpu_leaf_scan_ns);
      NodeView::SlotResult slot = view.FindLeafSlot(key);
      if (slot.match == UINT32_MAX) {
        co_await hocl_.Unlock(locked.guard, {}, o.combine_commands, stats);
        co_return Status::NotFound();
      }
      view.SetLeafEntry(slot.match, kNullKey, 0);
      const uint32_t off = view.LeafEntryOffset(slot.match);
      const uint32_t entry_size = o.shape.leaf_entry_size();
      wrs.push_back(rdma::WorkRequest::Write(locked.addr.Plus(off),
                                             buf.data() + off, entry_size));
      write_bytes = entry_size;
      if (o.merge_threshold > 0) live = view.LiveLeafEntries(true);
    } else {
      // Sorted leaf (FG): shift-remove locally, then write back only what
      // changed — the header (count, seal) and the left-shifted suffix —
      // instead of the whole node; remote bytes past the suffix still
      // equal the local staging copy, so checksum validation stays exact.
      co_await system_->fabric_.simulator().Delay(f.cpu_node_search_ns);
      const uint32_t n_before = view.count();
      const uint32_t found = view.SortedLeafFind(key);
      if (found == UINT32_MAX) {
        co_await hocl_.Unlock(locked.guard, {}, o.combine_commands, stats);
        co_return Status::NotFound();
      }
      view.SortedLeafRemoveAt(found);
      SealNode(view, /*structural_change=*/false);
      wrs.push_back(
          rdma::WorkRequest::Write(locked.addr, buf.data(), kHeaderSize));
      write_bytes = kHeaderSize;
      const uint32_t suffix_off = view.LeafEntryOffset(found);
      const uint32_t suffix_len = view.LeafEntryOffset(n_before) - suffix_off;
      wrs.push_back(rdma::WorkRequest::Write(locked.addr.Plus(suffix_off),
                                             buf.data() + suffix_off,
                                             suffix_len));
      write_bytes += suffix_len;
      if (o.consistency == TreeOptions::Consistency::kVersions) {
        // The rear node version lives in the last byte, outside both
        // regions above.
        wrs.push_back(rdma::WorkRequest::Write(
            locked.addr.Plus(node_size() - 1), buf.data() + node_size() - 1,
            1));
        write_bytes += 1;
      }
      live = n_before - 1;
    }

    delete_ops_++;
    if (MergeCandidate(view, live) && MergeBackoffExpired(locked.addr)) {
      const bool merged = co_await TryMergeLeafLocked(locked, buf.data(),
                                                      stats);
      if (merged) co_return Status::OK();
    }
    if (stats != nullptr) stats->bytes_written += write_bytes;
    co_await hocl_.Unlock(locked.guard, std::move(wrs), o.combine_commands,
                          stats);
    co_return Status::OK();
  }
  co_return Status::Internal("delete restarts exhausted");
}

// --- MultiDelete ------------------------------------------------------------

sim::Task<void> TreeClient::ApplyDeleteGroup(
    rdma::GlobalAddress addr, std::vector<size_t> idxs,
    const std::vector<Key>* keys, std::vector<Status>* out,
    std::vector<uint8_t>* defer, OpStats* stats, sim::CountdownLatch* latch) {
  const TreeOptions& o = opt();
  const rdma::FabricConfig& f = system_->fabric_.config();
  std::vector<uint8_t> buf(node_size());
  const Key first_key = (*keys)[idxs[0]];
  StatusOr<Locked> locked_r =
      co_await LockAndRead(addr, first_key, buf.data(), stats);
  if (!locked_r.ok()) {
    for (size_t idx : idxs) (*defer)[idx] = 1;
    latch->Arrive();
    co_return;
  }
  Locked locked = *locked_r;
  NodeView view(buf.data(), &o.shape);

  std::vector<rdma::WorkRequest> wrs;
  uint64_t write_bytes = 0;
  const uint32_t n_before = o.two_level_versions ? 0 : view.count();
  uint32_t min_shift = UINT32_MAX;  // sorted mode: leftmost removed slot
  uint32_t removed = 0;
  for (size_t idx : idxs) {
    const Key key = (*keys)[idx];
    if (!view.InFence(key)) {  // sibling chase moved us off this key
      (*defer)[idx] = 1;
      continue;
    }
    if (o.two_level_versions) {
      co_await system_->fabric_.simulator().Delay(f.cpu_leaf_scan_ns);
      NodeView::SlotResult slot = view.FindLeafSlot(key);
      if (slot.match == UINT32_MAX) {
        (*out)[idx] = Status::NotFound();
        continue;
      }
      view.SetLeafEntry(slot.match, kNullKey, 0);
      const uint32_t off = view.LeafEntryOffset(slot.match);
      const uint32_t entry_size = o.shape.leaf_entry_size();
      wrs.push_back(rdma::WorkRequest::Write(locked.addr.Plus(off),
                                             buf.data() + off, entry_size));
      write_bytes += entry_size;
      (*out)[idx] = Status::OK();
    } else {
      co_await system_->fabric_.simulator().Delay(f.cpu_node_search_ns);
      const uint32_t found = view.SortedLeafFind(key);
      if (found == UINT32_MAX) {
        (*out)[idx] = Status::NotFound();
        continue;
      }
      view.SortedLeafRemoveAt(found);
      min_shift = std::min(min_shift, found);
      removed++;
      (*out)[idx] = Status::OK();
    }
  }
  if (!o.two_level_versions && removed > 0) {
    // One header + one suffix write covering every shifted entry.
    SealNode(view, /*structural_change=*/false);
    wrs.push_back(
        rdma::WorkRequest::Write(locked.addr, buf.data(), kHeaderSize));
    const uint32_t suffix_off = view.LeafEntryOffset(min_shift);
    const uint32_t suffix_len = view.LeafEntryOffset(n_before) - suffix_off;
    wrs.push_back(rdma::WorkRequest::Write(locked.addr.Plus(suffix_off),
                                           buf.data() + suffix_off,
                                           suffix_len));
    write_bytes += kHeaderSize + suffix_len;
    if (o.consistency == TreeOptions::Consistency::kVersions) {
      wrs.push_back(rdma::WorkRequest::Write(locked.addr.Plus(node_size() - 1),
                                             buf.data() + node_size() - 1, 1));
      write_bytes += 1;
    }
  }

  const uint32_t live =
      o.merge_threshold > 0 ? view.LiveLeafEntries(o.two_level_versions) : 0;
  delete_ops_++;
  if ((write_bytes > 0 || removed > 0) && MergeCandidate(view, live) &&
      MergeBackoffExpired(locked.addr)) {
    const bool merged = co_await TryMergeLeafLocked(locked, buf.data(), stats);
    if (merged) {
      latch->Arrive();
      co_return;
    }
  }
  if (stats != nullptr) stats->bytes_written += write_bytes;
  co_await hocl_.Unlock(locked.guard, std::move(wrs), o.combine_commands,
                        stats);
  latch->Arrive();
}

sim::Task<Status> TreeClient::MultiDelete(std::vector<Key> keys,
                                          std::vector<Status>* out,
                                          OpStats* stats) {
  const rdma::FabricConfig& f = system_->fabric_.config();
  out->assign(keys.size(), Status::NotFound());
  if (keys.empty()) co_return Status::OK();
  for (Key k : keys) SHERMAN_CHECK(k != kNullKey && k != kMaxKey);
  EpochPin pin(&system_->reclaim_, cs_id_);
  co_await system_->fabric_.simulator().Delay(f.cpu_op_overhead_ns);

  // Phase 1 — plan leaves concurrently, one descent per DISTINCT key
  // (same as MultiGet/MultiInsert).
  const size_t n = keys.size();
  std::map<Key, size_t> plan_of;  // key -> plan slot
  std::vector<Key> uniq;
  for (Key k : keys) {
    auto [it, inserted] = plan_of.try_emplace(k, uniq.size());
    if (inserted) uniq.push_back(k);
  }
  std::vector<LeafRef> refs(uniq.size());
  std::vector<Status> plan_st(uniq.size(), Status::OK());
  {
    SHERMAN_TSPAN(stats != nullptr ? stats->trace : nullptr, "batch.plan",
                  uniq.size());
    sim::CountdownLatch latch(uniq.size());
    for (size_t j = 0; j < uniq.size(); j++) {
      sim::Spawn(PlanLeafInto(uniq[j], &refs[j], &plan_st[j], stats, &latch));
    }
    co_await latch.Wait();
  }

  // Phase 2 — group by target leaf; each group clears its entries under
  // one lock with the writes + release in a single doorbell, groups in
  // parallel. Duplicate keys within a batch stay in one group (same
  // planned leaf), so the second clear simply reports NotFound.
  std::vector<uint8_t> defer(n, 0);
  std::map<uint64_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < n; i++) {
    const size_t j = plan_of[keys[i]];
    if (plan_st[j].ok()) {
      groups[refs[j].addr.ToU64()].push_back(i);
    } else {
      defer[i] = 1;
    }
  }
  if (!groups.empty()) {
    SHERMAN_TSPAN(stats != nullptr ? stats->trace : nullptr, "batch.apply",
                  groups.size());
    sim::CountdownLatch latch(groups.size());
    for (auto& [addr_u64, idxs] : groups) {
      sim::Spawn(ApplyDeleteGroup(rdma::GlobalAddress::FromU64(addr_u64),
                                  std::move(idxs), &keys, out, &defer, stats,
                                  &latch));
    }
    co_await latch.Wait();
  }

  // Phase 3 — deferred keys (fence moves, plan failures) go through the
  // full op-at-a-time delete.
  Status overall = Status::OK();
  for (size_t i = 0; i < n; i++) {
    if (!defer[i]) continue;
    Status st = co_await Delete(keys[i], stats);
    (*out)[i] = st;
    if (!st.ok() && !st.IsNotFound() && overall.ok()) overall = st;
  }
  co_return overall;
}

// --- Range query -----------------------------------------------------------

sim::Task<void> TreeClient::ReadInto(rdma::GlobalAddress addr, uint8_t* buf,
                                     uint32_t len,
                                     sim::CountdownLatch* latch) {
  co_await QpFor(addr).Post(rdma::WorkRequest::Read(addr, buf, len));
  latch->Arrive();
}

sim::Task<void> TreeClient::ProbeLockForRecovery(rdma::GlobalAddress addr,
                                                 OpStats* stats) {
  if (addr.is_null()) co_return;
  LockGuard g = co_await hocl_.Lock(addr, stats);
  co_await hocl_.Unlock(g, {}, opt().combine_commands, stats);
}

sim::Task<Status> TreeClient::RangeQuery(
    Key from, uint32_t count, std::vector<std::pair<Key, uint64_t>>* out,
    OpStats* stats) {
  SHERMAN_CHECK(from != kNullKey && from != kMaxKey);
  const TreeOptions& o = opt();
  const rdma::FabricConfig& f = system_->fabric_.config();
  out->clear();
  if (count == 0) co_return Status::OK();
  EpochPin pin(&system_->reclaim_, cs_id_);
  co_await system_->fabric_.simulator().Delay(f.cpu_op_overhead_ns);

  Key cursor = from;
  const uint32_t per_leaf_estimate = std::max(1u, o.shape.leaf_capacity() / 2);
  std::vector<std::vector<uint8_t>> bufs;
  rdma::GlobalAddress probe_addr;  // last tombstone this scan bounced off

  for (uint32_t attempt = 0; attempt < o.max_restarts; attempt++) {
    // See Lookup: repeated bounces off one tombstone may mean its writer
    // died mid-structural-op; probe its lock so recovery triggers.
    if (!probe_addr.is_null() && attempt > 0 && (attempt & 7) == 0) {
      co_await ProbeLockForRecovery(probe_addr, stats);
      probe_addr = rdma::GlobalAddress();
    }
    // Plan a batch of target leaves from the cached level-1 node, falling
    // back to a single traversal; fetch them with parallel RDMA_READs
    // (§4.4, "Range query").
    std::vector<rdma::GlobalAddress> leaves;
    const uint32_t still_needed =
        count - static_cast<uint32_t>(out->size());
    uint32_t want =
        std::min(16u, (still_needed + per_leaf_estimate - 1) / per_leaf_estimate);
    if (want == 0) want = 1;
    if (o.enable_cache) {
      const ParsedInternal* p = cache_.LookupLevel1(cursor);
      if (p != nullptr) {
        for (uint32_t j = 0; j < want; j++) {
          const rdma::GlobalAddress a = p->ChildAfter(cursor, j);
          if (a.is_null()) break;
          leaves.push_back(a);
        }
      }
    }
    if (leaves.empty()) {
      StatusOr<LeafRef> r =
          co_await FindLeafAddr(cursor, stats, /*allow_hint=*/attempt == 0);
      if (!r.ok()) co_return r.status();
      leaves.push_back(r->addr);
    }

    bufs.assign(leaves.size(), std::vector<uint8_t>(node_size()));
    sim::CountdownLatch latch(leaves.size());
    for (size_t i = 0; i < leaves.size(); i++) {
      sim::Spawn(ReadInto(leaves[i], bufs[i].data(), node_size(), &latch));
    }
    co_await latch.Wait();
    if (stats != nullptr) {
      stats->round_trips += static_cast<uint32_t>(leaves.size());
    }

    bool restart = false;
    bool done = false;
    for (size_t i = 0; i < leaves.size() && !restart && !done; i++) {
      uint32_t rereads = 0;
      int chases = 0;
      while (true) {
        if (rereads > o.max_read_retries) {
          co_return Status::TimedOut("range leaf retries exhausted");
        }
        NodeView view(bufs[i].data(), &o.shape);
        bool reread_needed = !NodeConsistent(bufs[i].data());
        if (!reread_needed) {
          const bool usable = !view.is_free() && view.is_leaf() &&
                              cursor >= view.lo_fence();
          if (usable && cursor >= view.hi_fence() &&
              !view.sibling().is_null() && chases < kMaxSiblingChase) {
            // B-link sibling chase, mirroring Lookup. Restart-and-
            // re-resolve is NOT enough here: a crashed client can leave a
            // committed leaf split whose parent separator is missing until
            // recovery replays it, and every re-resolution would route the
            // cursor back to the left half forever. The sibling pointer is
            // authoritative; follow it.
            chases++;
            leaves[i] = view.sibling();
            reread_needed = true;  // fetch the sibling into this buffer
          } else if (!usable || cursor >= view.hi_fence()) {
            cache_.InvalidateLevel1Covering(cursor);
            if (view.is_free()) probe_addr = leaves[i];
            if (attempt >= 2) root_known_ = false;  // stale root (see Insert)
            restart = true;
            break;
          }
        }
        if (!reread_needed) {
          // Collect entries >= cursor (NOT >= from: a restart can land on
          // a leaf whose lo fence moved left of the cursor — a merge
          // widened it over an already-scanned range — and re-collecting
          // [lo, cursor) would duplicate keys out of order); a torn entry
          // forces a leaf re-read.
          co_await system_->fabric_.simulator().Delay(
              o.two_level_versions ? f.cpu_leaf_scan_ns
                                   : f.cpu_node_search_ns);
          std::vector<std::pair<Key, uint64_t>> got;
          if (o.two_level_versions) {
            const uint32_t cap = o.shape.leaf_capacity();
            for (uint32_t s = 0; s < cap; s++) {
              const Key k = view.LeafKey(s);
              if (k == kNullKey) continue;
              if (!view.LeafEntryVersionsMatch(s)) {
                reread_needed = true;
                break;
              }
              if (k >= cursor) got.emplace_back(k, view.LeafValue(s));
            }
          } else {
            const uint32_t n = view.count();
            for (uint32_t s = 0; s < n; s++) {
              const Key k = view.LeafKey(s);
              if (k >= cursor) got.emplace_back(k, view.LeafValue(s));
            }
          }
          if (!reread_needed) {
            std::sort(got.begin(), got.end());
            for (const auto& kv : got) {
              if (out->size() >= count) break;
              out->push_back(kv);
            }
            cursor = view.hi_fence();
            if (out->size() >= count || cursor == kMaxKey) done = true;
            break;
          }
        }
        // Re-read this leaf.
        if (stats != nullptr) stats->read_retries++;
        rereads++;
        Status st = co_await ReadRaw(leaves[i], bufs[i].data(), node_size(),
                                     stats);
        if (!st.ok()) co_return st;
      }
    }
    if (done) co_return Status::OK();
  }
  co_return Status::Internal("range restarts exhausted");
}

// --- Batched operations (MultiGet / MultiInsert) ---------------------------

namespace {
// Cap on READs per doorbell ring (real NIC postlists are bounded); larger
// per-MS fetch sets split into multiple rings, still pipelined.
constexpr size_t kMaxReadBatch = 16;
}  // namespace

sim::Task<void> TreeClient::PlanLeafInto(Key key, LeafRef* ref, Status* st,
                                         OpStats* stats,
                                         sim::CountdownLatch* latch) {
  StatusOr<LeafRef> r = co_await FindLeafAddr(key, stats);
  if (r.ok()) {
    *ref = *r;
  } else {
    *st = r.status();
  }
  latch->Arrive();
}

sim::Task<void> TreeClient::PostReadsInto(uint16_t ms_node,
                                          std::vector<rdma::WorkRequest> wrs,
                                          OpStats* stats,
                                          sim::CountdownLatch* latch) {
  SHERMAN_TEVENT(stats != nullptr ? stats->trace : nullptr, "rdma.read_batch",
                 wrs.size(), ms_node);
  rdma::RdmaResult r = co_await system_->fabric_.qp(cs_id_, ms_node)
                           .PostReadBatch(std::move(wrs));
  SHERMAN_CHECK(r.status.ok());
  if (stats != nullptr) stats->round_trips++;
  latch->Arrive();
}

sim::Task<Status> TreeClient::MultiGet(std::vector<Key> keys,
                                       std::vector<MultiGetResult>* out,
                                       OpStats* stats) {
  const TreeOptions& o = opt();
  const rdma::FabricConfig& f = system_->fabric_.config();
  sim::Simulator& sim = system_->fabric_.simulator();
  out->assign(keys.size(), MultiGetResult{});
  if (keys.empty()) co_return Status::OK();
  for (Key k : keys) SHERMAN_CHECK(k != kNullKey && k != kMaxKey);
  EpochPin pin(&system_->reclaim_, cs_id_);
  co_await sim.Delay(f.cpu_op_overhead_ns);

  // Phase 1 — plan: resolve every DISTINCT key to a leaf address (hot
  // keys repeat in Zipfian batches; one descent serves all copies). Cache
  // hits are local; misses traverse, and the traversals run concurrently
  // so their upper-level READs overlap instead of paying a full descent
  // each.
  const size_t n = keys.size();
  std::map<Key, size_t> plan_of;  // key -> plan slot
  std::vector<Key> uniq;
  for (Key k : keys) {
    auto [it, inserted] = plan_of.try_emplace(k, uniq.size());
    if (inserted) uniq.push_back(k);
  }
  std::vector<LeafRef> refs(uniq.size());
  std::vector<Status> plan_st(uniq.size(), Status::OK());
  {
    SHERMAN_TSPAN(stats != nullptr ? stats->trace : nullptr, "batch.plan",
                  uniq.size());
    sim::CountdownLatch latch(uniq.size());
    for (size_t j = 0; j < uniq.size(); j++) {
      sim::Spawn(PlanLeafInto(uniq[j], &refs[j], &plan_st[j], stats, &latch));
    }
    co_await latch.Wait();
  }

  // Phase 2 — fetch: one buffer per distinct leaf, one doorbell-batched
  // READ list per memory server (chunked at the NIC postlist cap).
  std::map<uint64_t, size_t> buf_of;  // leaf addr -> buffer index
  std::vector<rdma::GlobalAddress> leaves;
  std::vector<size_t> key_buf(n, SIZE_MAX);
  for (size_t i = 0; i < n; i++) {
    const size_t j = plan_of[keys[i]];
    if (!plan_st[j].ok()) continue;
    const rdma::GlobalAddress addr = refs[j].addr;
    auto [it, inserted] = buf_of.try_emplace(addr.ToU64(), leaves.size());
    if (inserted) leaves.push_back(addr);
    key_buf[i] = it->second;
  }
  std::vector<std::vector<uint8_t>> bufs(leaves.size(),
                                         std::vector<uint8_t>(node_size()));
  std::map<uint16_t, std::vector<rdma::WorkRequest>> per_ms;
  for (size_t j = 0; j < leaves.size(); j++) {
    per_ms[leaves[j].node].push_back(
        rdma::WorkRequest::Read(leaves[j], bufs[j].data(), node_size()));
  }
  std::vector<std::pair<uint16_t, std::vector<rdma::WorkRequest>>> rings;
  for (auto& [ms, wrs] : per_ms) {
    for (size_t at = 0; at < wrs.size(); at += kMaxReadBatch) {
      const size_t end = std::min(at + kMaxReadBatch, wrs.size());
      rings.emplace_back(ms, std::vector<rdma::WorkRequest>(
                                 wrs.begin() + at, wrs.begin() + end));
    }
  }
  const sim::SimTime fetch_start = sim.now();
  if (!rings.empty()) {
    SHERMAN_TSPAN(stats != nullptr ? stats->trace : nullptr, "multiget.fetch",
                  rings.size());
    sim::CountdownLatch latch(rings.size());
    for (auto& [ms, wrs] : rings) {
      sim::Spawn(PostReadsInto(ms, std::move(wrs), stats, &latch));
    }
    co_await latch.Wait();
  }

  // 4-bit wraparound guard (§4.4), batch edition: if the whole fetch took
  // longer than a full version cycle could, don't trust version-matching
  // leaves — re-serve through the checked singleton path.
  const bool slow_fetch =
      o.consistency == TreeOptions::Consistency::kVersions &&
      sim.now() - fetch_start > WrapGuardNs();

  // Phase 3 — validate locally; anything stale or torn falls back.
  std::vector<size_t> retry;
  for (size_t i = 0; i < n; i++) {
    if (key_buf[i] == SIZE_MAX) {
      // Planning failed (e.g. restarts exhausted under churn); the
      // singleton path retries from scratch with its own bounds.
      retry.push_back(i);
      continue;
    }
    uint8_t* buf = bufs[key_buf[i]].data();
    NodeView view(buf, &o.shape);
    if (slow_fetch || !NodeConsistent(buf)) {
      if (stats != nullptr) stats->read_retries++;
      retry.push_back(i);
      continue;
    }
    if (view.is_free() || !view.is_leaf() || !view.InFence(keys[i])) {
      cache_.InvalidateLevel1Covering(keys[i]);
      retry.push_back(i);
      continue;
    }
    if (o.two_level_versions) {
      co_await sim.Delay(f.cpu_leaf_scan_ns);
      NodeView::SlotResult slot = view.FindLeafSlot(keys[i]);
      if (slot.match == UINT32_MAX) {
        (*out)[i].status = Status::NotFound();
        continue;
      }
      if (!view.LeafEntryVersionsMatch(slot.match)) {
        if (stats != nullptr) stats->read_retries++;
        retry.push_back(i);
        continue;
      }
      (*out)[i].status = Status::OK();
      (*out)[i].value = view.LeafValue(slot.match);
    } else {
      co_await sim.Delay(f.cpu_node_search_ns);
      const uint32_t at = view.SortedLeafFind(keys[i]);
      if (at == UINT32_MAX) {
        (*out)[i].status = Status::NotFound();
      } else {
        (*out)[i].status = Status::OK();
        (*out)[i].value = view.LeafValue(at);
      }
    }
  }

  // Phase 4 — re-serve the stragglers op-at-a-time (handles splits,
  // sibling chases, and version churn with the full retry machinery).
  SHERMAN_TSPAN(stats != nullptr ? stats->trace : nullptr,
                "multiget.fallback", retry.size());
  Status overall = Status::OK();
  for (size_t i : retry) {
    uint64_t value = 0;
    Status st = co_await Lookup(keys[i], &value, stats);
    if (st.ok()) {
      (*out)[i].status = Status::OK();
      (*out)[i].value = value;
    } else {
      (*out)[i].status = st;
      if (!st.IsNotFound() && overall.ok()) overall = st;
    }
  }
  co_return overall;
}

sim::Task<void> TreeClient::ApplyInsertGroup(
    rdma::GlobalAddress addr, std::vector<size_t> idxs,
    const std::vector<std::pair<Key, uint64_t>>* kvs,
    std::vector<uint8_t>* defer, OpStats* stats, sim::CountdownLatch* latch) {
  const TreeOptions& o = opt();
  const rdma::FabricConfig& f = system_->fabric_.config();
  std::vector<uint8_t> buf(node_size());
  const Key first_key = (*kvs)[idxs[0]].first;
  StatusOr<Locked> locked_r =
      co_await LockAndRead(addr, first_key, buf.data(), stats);
  if (!locked_r.ok()) {
    for (size_t idx : idxs) (*defer)[idx] = 1;
    latch->Arrive();
    co_return;
  }
  Locked locked = *locked_r;
  NodeView view(buf.data(), &o.shape);

  std::vector<rdma::WorkRequest> wrs;
  bool whole_node = false;
  for (size_t idx : idxs) {
    const Key key = (*kvs)[idx].first;
    const uint64_t value = (*kvs)[idx].second;
    if (!view.InFence(key)) {  // sibling chase moved us off this key
      (*defer)[idx] = 1;
      continue;
    }
    if (o.two_level_versions) {
      co_await system_->fabric_.simulator().Delay(f.cpu_leaf_scan_ns);
      NodeView::SlotResult slot = view.FindLeafSlot(key);
      const uint32_t i = slot.match != UINT32_MAX ? slot.match : slot.empty;
      if (i == UINT32_MAX) {  // full: the split goes through Insert()
        (*defer)[idx] = 1;
        continue;
      }
      view.SetLeafEntry(i, key, value);
      const uint32_t off = view.LeafEntryOffset(i);
      const uint32_t entry_size = o.shape.leaf_entry_size();
      if (stats != nullptr) stats->bytes_written += entry_size;
      wrs.push_back(rdma::WorkRequest::Write(locked.addr.Plus(off),
                                             buf.data() + off, entry_size));
    } else {
      co_await system_->fabric_.simulator().Delay(f.cpu_node_search_ns);
      if (!view.SortedLeafInsert(key, value)) {
        (*defer)[idx] = 1;
        continue;
      }
      whole_node = true;
    }
  }
  if (whole_node) {
    SealNode(view, /*structural_change=*/false);
    if (stats != nullptr) stats->bytes_written += node_size();
    wrs.clear();
    wrs.push_back(
        rdma::WorkRequest::Write(locked.addr, buf.data(), node_size()));
  }
  co_await hocl_.Unlock(locked.guard, std::move(wrs), o.combine_commands,
                        stats);
  latch->Arrive();
}

sim::Task<Status> TreeClient::MultiInsert(
    std::vector<std::pair<Key, uint64_t>> kvs, OpStats* stats) {
  const rdma::FabricConfig& f = system_->fabric_.config();
  if (kvs.empty()) co_return Status::OK();
  for (const auto& [k, v] : kvs) SHERMAN_CHECK(k != kNullKey && k != kMaxKey);
  EpochPin pin(&system_->reclaim_, cs_id_);
  co_await system_->fabric_.simulator().Delay(f.cpu_op_overhead_ns);

  // Phase 1 — plan leaves concurrently, one descent per DISTINCT key
  // (same as MultiGet).
  const size_t n = kvs.size();
  std::map<Key, size_t> plan_of;  // key -> plan slot
  std::vector<Key> uniq;
  for (const auto& [k, v] : kvs) {
    auto [it, inserted] = plan_of.try_emplace(k, uniq.size());
    if (inserted) uniq.push_back(k);
  }
  std::vector<LeafRef> refs(uniq.size());
  std::vector<Status> plan_st(uniq.size(), Status::OK());
  {
    SHERMAN_TSPAN(stats != nullptr ? stats->trace : nullptr, "batch.plan",
                  uniq.size());
    sim::CountdownLatch latch(uniq.size());
    for (size_t j = 0; j < uniq.size(); j++) {
      sim::Spawn(PlanLeafInto(uniq[j], &refs[j], &plan_st[j], stats, &latch));
    }
    co_await latch.Wait();
  }

  // Phase 2 — group by target leaf and apply each group under one lock,
  // groups in parallel. Within a group the entry write-backs and the lock
  // release combine into a single doorbell batch.
  std::vector<uint8_t> defer(n, 0);
  std::map<uint64_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < n; i++) {
    const size_t j = plan_of[kvs[i].first];
    if (plan_st[j].ok()) {
      groups[refs[j].addr.ToU64()].push_back(i);
    } else {
      defer[i] = 1;
    }
  }
  if (!groups.empty()) {
    SHERMAN_TSPAN(stats != nullptr ? stats->trace : nullptr, "batch.apply",
                  groups.size());
    sim::CountdownLatch latch(groups.size());
    for (auto& [addr_u64, idxs] : groups) {
      sim::Spawn(ApplyInsertGroup(rdma::GlobalAddress::FromU64(addr_u64),
                                  std::move(idxs), &kvs, &defer, stats,
                                  &latch));
    }
    co_await latch.Wait();
  }

  // Phase 3 — deferred keys (splits, fence moves, plan failures) go
  // through the full op-at-a-time insert.
  for (size_t i = 0; i < n; i++) {
    if (!defer[i]) continue;
    Status st = co_await Insert(kvs[i].first, kvs[i].second, stats);
    if (!st.ok()) co_return st;
  }
  co_return Status::OK();
}

// ---------------------------------------------------------------------------
// ShermanSystem
// ---------------------------------------------------------------------------

ShermanSystem::ShermanSystem(rdma::FabricConfig fabric_config,
                             TreeOptions tree_options)
    : options_(tree_options), fabric_(fabric_config) {
  options_.Validate();
  tracer_ = std::make_unique<obs::Tracer>(&fabric_.simulator());
  obs::RegisterFatalDumpTracer(tracer_.get());
  // Flight-record every injected client death (SHERMAN_CRASH_AT kills and
  // explicit KillClient): the victim's last spans show what it was doing
  // when it died. Owner-scoped so a newer system's registration wins.
  fault::Injector().SetDeathObserver(this, [this](int cs) {
    tracer_->DumpToStderr(
        "client cs" + std::to_string(cs) + " declared dead (crash injection)",
        {obs::RingId::Client(cs)});
    if (dmsan_ != nullptr) dmsan_->OnClientDead(cs);
  });
  if (dmsan::DefaultEnabled()) {
    dmsan::Checker::Config dcfg;
    dcfg.node_size = options_.shape.node_size;
    dcfg.lock = options_.lock;
    dcfg.reclaim = &reclaim_;
    dcfg.tracer = tracer_.get();
    dcfg.sim = &fabric_.simulator();
    dmsan_ = std::make_unique<dmsan::Checker>(dcfg);
    dmsan::Attach(&fabric_.simulator(), dmsan_.get());
  }
  for (int i = 0; i < fabric_.num_memory_servers(); i++) {
    chunks_.push_back(std::make_unique<ChunkManager>(&fabric_.ms(i), &reclaim_));
    if (options_.enable_leaf_hints) {
      // After the ChunkManager: the directory chains its RPC handler in
      // front of the manager's (which aborts on unknown opcodes).
      hints_.push_back(std::make_unique<LeafHintDirectory>(&fabric_.ms(i),
                                                           dmsan_.get()));
    }
  }
  for (int i = 0; i < fabric_.num_compute_servers(); i++) {
    clients_.push_back(std::make_unique<TreeClient>(this, i));
  }
  RegisterCollectors();
}

ShermanSystem::~ShermanSystem() {
  fault::Injector().ClearDeathObserver(this);
  if (dmsan_ != nullptr) dmsan::Detach(&fabric_.simulator());
}

// One collector per component family. Collectors iterate the LIVE fabric
// at snapshot time, so servers added later (AddMemoryServer) are included
// automatically.
void ShermanSystem::RegisterCollectors() {
  // rdma.*: every CS->MS QP, summed.
  registry_.AddCollector([this](obs::MetricsSnapshot* s) {
    rdma::QpCounters total;
    for (int c = 0; c < fabric_.num_compute_servers(); c++) {
      for (int m = 0; m < fabric_.num_memory_servers(); m++) {
        const rdma::QpCounters& qc = fabric_.qp(c, m).counters();
        total.batches += qc.batches;
        total.wrs += qc.wrs;
        total.reads += qc.reads;
        total.writes += qc.writes;
        total.atomics += qc.atomics;
        total.read_bytes += qc.read_bytes;
        total.write_bytes += qc.write_bytes;
        total.rpcs += qc.rpcs;
      }
    }
    s->AddCounter("rdma.batches", total.batches);
    s->AddCounter("rdma.wrs", total.wrs);
    s->AddCounter("rdma.reads", total.reads);
    s->AddCounter("rdma.writes", total.writes);
    s->AddCounter("rdma.atomics", total.atomics);
    s->AddCounter("rdma.read_bytes", total.read_bytes);
    s->AddCounter("rdma.write_bytes", total.write_bytes);
    s->AddCounter("rdma.rpcs", total.rpcs);
  });

  // nic.{ms,cs}.*: engine throughput and queueing (token-bucket waits).
  registry_.AddCollector([this](obs::MetricsSnapshot* s) {
    auto add = [s](const char* side, const rdma::NicCounters& c) {
      const std::string p = std::string("nic.") + side + ".";
      s->AddCounter(p + "tx_msgs", c.tx_msgs);
      s->AddCounter(p + "rx_msgs", c.rx_msgs);
      s->AddCounter(p + "tx_bytes", c.tx_bytes);
      s->AddCounter(p + "rx_bytes", c.rx_bytes);
      s->AddCounter(p + "atomics", c.atomics);
      s->AddCounter(p + "atomic_stall_ns", c.atomic_stall_ns);
      s->AddCounter(p + "tx_stall_ns", c.tx_stall_ns);
      s->AddCounter(p + "rx_stall_ns", c.rx_stall_ns);
    };
    rdma::NicCounters ms_total;
    for (int m = 0; m < fabric_.num_memory_servers(); m++) {
      const rdma::NicCounters& c = fabric_.ms(m).nic().counters();
      ms_total.tx_msgs += c.tx_msgs;
      ms_total.rx_msgs += c.rx_msgs;
      ms_total.tx_bytes += c.tx_bytes;
      ms_total.rx_bytes += c.rx_bytes;
      ms_total.atomics += c.atomics;
      ms_total.atomic_stall_ns += c.atomic_stall_ns;
      ms_total.tx_stall_ns += c.tx_stall_ns;
      ms_total.rx_stall_ns += c.rx_stall_ns;
    }
    add("ms", ms_total);
    rdma::NicCounters cs_total;
    for (int c = 0; c < fabric_.num_compute_servers(); c++) {
      const rdma::NicCounters& n = fabric_.cs(c).nic().counters();
      cs_total.tx_msgs += n.tx_msgs;
      cs_total.rx_msgs += n.rx_msgs;
      cs_total.tx_bytes += n.tx_bytes;
      cs_total.rx_bytes += n.rx_bytes;
      cs_total.atomics += n.atomics;
      cs_total.atomic_stall_ns += n.atomic_stall_ns;
      cs_total.tx_stall_ns += n.tx_stall_ns;
      cs_total.rx_stall_ns += n.rx_stall_ns;
    }
    add("cs", cs_total);
  });

  // lock.* / cache.* / reclaim (client side) / recover.*: summed over CSs.
  registry_.AddCollector([this](obs::MetricsSnapshot* s) {
    ReclaimStats reclaim_total;
    recover::RecoverStats recover_total;
    for (const auto& client : clients_) {
      const HoclClient& h = client->hocl();
      s->AddCounter("lock.handovers", h.handovers());
      s->AddCounter("lock.cas_attempts", h.global_cas_attempts());
      s->AddCounter("lock.cas_failures", h.global_cas_failures());
      s->AddCounter("lock.lease_steals", h.lease_steals());
      const IndexCacheStats& cs = client->cache().stats();
      s->AddCounter("cache.l1_hits", cs.hits);
      s->AddCounter("cache.l1_misses", cs.misses);
      s->AddCounter("cache.upper_hits", cs.upper_hits);
      s->AddCounter("cache.upper_misses", cs.upper_misses);
      s->AddCounter("cache.evictions", cs.evictions);
      s->AddCounter("cache.invalidations", cs.invalidations);
      s->gauges["cache.bytes_used"] += static_cast<double>(client->cache().bytes_used());
      reclaim_total.Merge(client->reclaim_stats());
      recover_total.Merge(client->recoverer().stats());
    }
    obs::AddToSnapshot(s, reclaim_total);
    obs::AddToSnapshot(s, recover_total);
  });

  // alloc.* + grace-list state: summed over chunk managers; epoch gauges.
  registry_.AddCollector([this](obs::MetricsSnapshot* s) {
    uint64_t grace = 0;
    for (const auto& cm : chunks_) {
      s->AddCounter("alloc.nodes_freed", cm->nodes_freed());
      s->AddCounter("alloc.nodes_recycled", cm->nodes_recycled());
      s->AddCounter("alloc.duplicate_frees", cm->duplicate_frees());
      grace += cm->grace_pending();
    }
    s->SetGauge("alloc.allocated_bytes", static_cast<double>(TotalAllocatedBytes()));
    s->SetGauge("reclaim.grace_pending", static_cast<double>(grace));
    s->SetGauge("reclaim.epoch", static_cast<double>(reclaim_.current()));
    s->SetGauge("reclaim.pinned_ops", static_cast<double>(reclaim_.pinned_ops()));
  });

  // vlog.*: client-side append/read/GC traffic + MS-side segment liveness.
  if (options_.shape.varlen) {
    registry_.AddCollector([this](obs::MetricsSnapshot* s) {
      vlog::VlogStats total;
      for (const auto& client : clients_) {
        const vlog::VlogStats& v = client->vlog().stats();
        total.appends += v.appends;
        total.append_bytes += v.append_bytes;
        total.reads += v.reads;
        total.retires += v.retires;
        total.segments_opened += v.segments_opened;
        total.gc_passes += v.gc_passes;
        total.gc_relocated += v.gc_relocated;
        total.gc_stale += v.gc_stale;
      }
      s->AddCounter("vlog.appends", total.appends);
      s->AddCounter("vlog.append_bytes", total.append_bytes);
      s->AddCounter("vlog.reads", total.reads);
      s->AddCounter("vlog.retires", total.retires);
      s->AddCounter("vlog.segments_opened", total.segments_opened);
      s->AddCounter("vlog.gc_passes", total.gc_passes);
      s->AddCounter("vlog.gc_relocated", total.gc_relocated);
      s->AddCounter("vlog.gc_stale", total.gc_stale);
      uint64_t live = 0;
      for (const auto& cm : chunks_) {
        live += cm->vlog_live_segments();
        s->AddCounter("vlog.retired_extents", cm->vlog_retired_extents());
        s->AddCounter("vlog.segments_freed", cm->vlog_segments_freed());
        s->AddCounter("vlog.victims_claimed", cm->vlog_victims_claimed());
      }
      s->SetGauge("vlog.live_segments", static_cast<double>(live));
    });
  }

  // hint.*: leaf-hint sidecar — MS-side directory churn + client-side
  // mirror outcomes (consult/serve/stale/chase/refresh).
  if (options_.enable_leaf_hints) {
    registry_.AddCollector([this](obs::MetricsSnapshot* s) {
      uint64_t live = 0;
      for (const auto& dir : hints_) {
        live += dir->live_entries();
        s->AddCounter("hint.published", dir->published());
        s->AddCounter("hint.invalidated", dir->invalidated());
        s->AddCounter("hint.dropped_full", dir->dropped_full());
      }
      s->SetGauge("hint.live_entries", static_cast<double>(live));
      TreeClient::HintStats total;
      for (const auto& client : clients_) {
        const TreeClient::HintStats& h = client->hint_stats();
        total.consults += h.consults;
        total.served += h.served;
        total.stale += h.stale;
        total.chases += h.chases;
        total.refreshes += h.refreshes;
        total.publishes += h.publishes;
        total.invalidates += h.invalidates;
      }
      s->AddCounter("hint.consults", total.consults);
      s->AddCounter("hint.served", total.served);
      s->AddCounter("hint.stale", total.stale);
      s->AddCounter("hint.chases", total.chases);
      s->AddCounter("hint.refreshes", total.refreshes);
      s->AddCounter("hint.publish_rpcs", total.publishes);
      s->AddCounter("hint.invalidate_rpcs", total.invalidates);
    });
  }
}

rdma::GlobalAddress ShermanSystem::DebugRootAddr() const {
  auto* self = const_cast<ShermanSystem*>(this);
  const uint8_t* p = self->fabric_.ms(0).host().raw(kRootPointerOffset);
  uint64_t packed;
  std::memcpy(&packed, p, 8);
  return rdma::GlobalAddress::FromU64(packed);
}

int ShermanSystem::AddMemoryServer() {
  rdma::MemoryServer& ms = fabric_.AddMemoryServer();
  chunks_.push_back(std::make_unique<ChunkManager>(&ms, &reclaim_));
  if (options_.enable_leaf_hints) {
    hints_.push_back(
        std::make_unique<LeafHintDirectory>(&ms, dmsan_.get()));
  }
  return ms.id();
}

uint32_t ShermanSystem::DebugHeight() const {
  auto* self = const_cast<ShermanSystem*>(this);
  const rdma::GlobalAddress root = DebugRootAddr();
  NodeView view(self->fabric_.HostRaw(root), &options_.shape);
  return view.level() + 1u;
}

}  // namespace sherman
