#include "core/node_layout.h"

#include <algorithm>
#include <cstring>
#include <iterator>

#include "sanitizer/dmsan.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace sherman {

uint32_t TreeShape::leaf_capacity() const {
  return (node_size - kHeaderSize - 1) / leaf_entry_size();
}

uint32_t TreeShape::internal_capacity() const {
  return (node_size - kOffLeftmostChild - 8 - 1) / internal_entry_size();
}

uint32_t TreeShape::var_usable_bytes() const {
  return node_size - kHeaderSize - 1;
}

Key RoutingKeyFor(const Slice& key) {
  uint64_t rk = 0;
  for (size_t i = 0; i < 8; i++) {
    const uint8_t b =
        i < key.size() ? static_cast<uint8_t>(key.data()[i]) : 0;
    rk = (rk << 8) | b;
  }
  return rk;
}

uint64_t NodeView::Load64(uint32_t off) const {
  uint64_t v;
  std::memcpy(&v, data_ + off, 8);
  return v;
}

void NodeView::Store64(uint32_t off, uint64_t v) {
  std::memcpy(data_ + off, &v, 8);
}

void NodeView::BumpNodeVersions() {
  data_[kOffFnv] = (front_version() + 1) & 0xf;
  data_[shape_->node_size - 1] = (rear_version() + 1) & 0xf;
}

void NodeView::set_free(bool free) {
  if (free) {
    data_[kOffFlags] |= kFlagFree;
  } else {
    data_[kOffFlags] &= static_cast<uint8_t>(~kFlagFree);
  }
}

uint16_t NodeView::count() const {
  uint16_t c;
  std::memcpy(&c, data_ + kOffCount, 2);
  return c;
}

void NodeView::set_count(uint16_t c) { std::memcpy(data_ + kOffCount, &c, 2); }

uint32_t NodeView::stored_checksum() const {
  uint32_t c;
  std::memcpy(&c, data_ + kOffChecksum, 4);
  return c;
}

uint32_t NodeView::ComputeChecksum() const {
  // Everything before and after the 4-byte checksum field.
  uint32_t crc = Crc32c(data_, kOffChecksum);
  crc = Crc32c(data_ + kOffChecksum + 4, shape_->node_size - kOffChecksum - 4,
               crc);
  return crc;
}

void NodeView::UpdateChecksum() {
  const uint32_t crc = ComputeChecksum();
  std::memcpy(data_ + kOffChecksum, &crc, 4);
}

void NodeView::SetLeafEntryRaw(uint32_t i, Key key, uint64_t value) {
  const uint32_t off = LeafEntryOffset(i);
  Store64(off + 1, key);
  // Zero-pad wide keys so serialized bytes are deterministic.
  if (shape_->key_size > 8) {
    std::memset(data_ + off + 1 + 8, 0, shape_->key_size - 8);
  }
  Store64(off + 1 + shape_->key_size, value);
  if (shape_->value_size > 8) {
    std::memset(data_ + off + 1 + shape_->key_size + 8, 0,
                shape_->value_size - 8);
  }
}

void NodeView::SetLeafEntry(uint32_t i, Key key, uint64_t value) {
  SetLeafEntryRaw(i, key, value);
  const uint32_t off = LeafEntryOffset(i);
  data_[off] = (data_[off] + 1) & 0xf;  // FEV
  const uint32_t rear = off + shape_->leaf_entry_size() - 1;
  data_[rear] = (data_[rear] + 1) & 0xf;  // REV
}

NodeView::SlotResult NodeView::FindLeafSlot(Key key) const {
  SlotResult r;
  const uint32_t cap = shape_->leaf_capacity();
  for (uint32_t i = 0; i < cap; i++) {
    const Key k = LeafKey(i);
    if (k == key) {
      r.match = i;
      return r;
    }
    if (k == kNullKey && r.empty == UINT32_MAX) r.empty = i;
  }
  return r;
}

uint32_t NodeView::SortedLeafFind(Key key) const {
  uint32_t lo = 0, hi = count();
  while (lo < hi) {
    const uint32_t mid = (lo + hi) / 2;
    const Key k = LeafKey(mid);
    if (k == key) return mid;
    if (k < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return UINT32_MAX;
}

bool NodeView::SortedLeafInsert(Key key, uint64_t value) {
  const uint32_t n = count();
  // Update in place if present.
  const uint32_t found = SortedLeafFind(key);
  if (found != UINT32_MAX) {
    SetLeafEntryRaw(found, key, value);
    return true;
  }
  if (n >= shape_->leaf_capacity()) return false;
  // Find insertion point and shift the tail right by one entry.
  uint32_t pos = 0;
  while (pos < n && LeafKey(pos) < key) pos++;
  const uint32_t esz = shape_->leaf_entry_size();
  std::memmove(data_ + LeafEntryOffset(pos + 1), data_ + LeafEntryOffset(pos),
               static_cast<size_t>(n - pos) * esz);
  SetLeafEntryRaw(pos, key, value);
  data_[LeafEntryOffset(pos)] = 0;  // fresh entry versions
  data_[LeafEntryOffset(pos) + esz - 1] = 0;
  set_count(static_cast<uint16_t>(n + 1));
  return true;
}

bool NodeView::SortedLeafRemove(Key key) {
  const uint32_t found = SortedLeafFind(key);
  if (found == UINT32_MAX) return false;
  SortedLeafRemoveAt(found);
  return true;
}

void NodeView::SortedLeafRemoveAt(uint32_t i) {
  const uint32_t n = count();
  const uint32_t esz = shape_->leaf_entry_size();
  std::memmove(data_ + LeafEntryOffset(i), data_ + LeafEntryOffset(i + 1),
               static_cast<size_t>(n - i - 1) * esz);
  set_count(static_cast<uint16_t>(n - 1));
}

uint32_t NodeView::LiveLeafEntries(bool two_level) const {
  if (!two_level) return count();
  uint32_t live = 0;
  const uint32_t cap = shape_->leaf_capacity();
  for (uint32_t i = 0; i < cap; i++) {
    if (LeafKey(i) != kNullKey) live++;
  }
  return live;
}

// --- varlen slotted leaves ---

uint16_t NodeView::heap_watermark() const {
  uint16_t w;
  std::memcpy(&w, data_ + kOffHeapWatermark, 2);
  return w;
}

void NodeView::set_heap_watermark(uint16_t w) {
  std::memcpy(data_ + kOffHeapWatermark, &w, 2);
}

uint16_t NodeView::dead_bytes() const {
  uint16_t d;
  std::memcpy(&d, data_ + kOffDeadBytes, 2);
  return d;
}

void NodeView::set_dead_bytes(uint16_t d) {
  std::memcpy(data_ + kOffDeadBytes, &d, 2);
}

uint16_t NodeView::VarEntryOff(uint32_t i) const {
  uint16_t off;
  std::memcpy(&off, data_ + VarSlotOffset(i), 2);
  return off;
}

uint16_t NodeView::VarVlen(uint32_t i) const {
  uint16_t v;
  std::memcpy(&v, data_ + VarSlotOffset(i) + 4, 2);
  return v;
}

std::string NodeView::VarFullKey(uint32_t i) const {
  std::string k;
  const Slice p = VarPrefix();
  const Slice s = VarSuffix(i);
  k.reserve(p.size() + s.size());
  k.append(p.data(), p.size());
  k.append(s.data(), s.size());
  return k;
}

uint64_t NodeView::VarVlogPtr(uint32_t i) const {
  return Load64(VarEntryOff(i) + VarSuffixLen(i));
}

void NodeView::VarSetVlogPtr(uint32_t i, uint64_t ptr) {
  Store64(VarEntryOff(i) + VarSuffixLen(i), ptr);
}

uint32_t NodeView::VarLiveBytes() const {
  const uint32_t n = count();
  uint32_t bytes = n * kVarSlotSize + prefix_len();
  for (uint32_t i = 0; i < n; i++) bytes += VarEntryBytes(i);
  return bytes;
}

uint32_t NodeView::VarFreeBytes() const {
  const uint32_t slots_end = kHeaderSize + count() * kVarSlotSize;
  const uint32_t w = heap_watermark();
  return w > slots_end ? w - slots_end : 0;
}

namespace {

// memcmp order with shorter-is-smaller ties (Slice::compare semantics,
// restated here so slot searches cannot drift from Slice's contract).
int CompareBytes(const char* a, size_t alen, const char* b, size_t blen) {
  const size_t n = alen < blen ? alen : blen;
  const int c = n == 0 ? 0 : std::memcmp(a, b, n);
  if (c != 0) return c;
  if (alen == blen) return 0;
  return alen < blen ? -1 : 1;
}

}  // namespace

uint32_t NodeView::VarLowerBound(const Slice& key) const {
  const uint32_t n = count();
  const uint32_t p = prefix_len();
  // Compare the query against the shared page prefix first.
  const Slice pfx = VarPrefix();
  const size_t head = key.size() < p ? key.size() : p;
  const int c = head == 0 ? 0 : std::memcmp(key.data(), pfx.data(), head);
  if (c < 0) return 0;
  if (c > 0) return n;
  if (key.size() < p) return 0;  // strict prefix of the page prefix
  const char* suffix = key.data() + p;
  const size_t slen = key.size() - p;
  uint32_t lo = 0, hi = n;
  while (lo < hi) {
    const uint32_t mid = (lo + hi) / 2;
    const Slice s = VarSuffix(mid);
    if (CompareBytes(s.data(), s.size(), suffix, slen) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint32_t NodeView::VarFind(const Slice& key) const {
  const uint32_t i = VarLowerBound(key);
  if (i >= count()) return UINT32_MAX;
  const uint32_t p = prefix_len();
  if (key.size() < p ||
      (p > 0 && std::memcmp(key.data(), VarPrefix().data(), p) != 0)) {
    return UINT32_MAX;
  }
  const Slice s = VarSuffix(i);
  if (s.size() != key.size() - p) return UINT32_MAX;
  if (s.size() > 0 && std::memcmp(s.data(), key.data() + p, s.size()) != 0) {
    return UINT32_MAX;
  }
  return i;
}

uint8_t NodeView::VarFingerprint(const Slice& key) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a over the full key
  for (size_t i = 0; i < key.size(); i++) {
    h ^= static_cast<uint8_t>(key.data()[i]);
    h *= 0x100000001b3ull;
  }
  return static_cast<uint8_t>(h);
}

bool NodeView::VarRebuildWithPrefix(uint32_t new_p) {
  SHERMAN_CHECK(new_p <= prefix_len());
  std::vector<VarEntry> entries = ExtractVarEntries(*this);
  if (VarBytesNeeded(entries, new_p) > shape_->var_usable_bytes()) {
    return false;
  }
  const uint32_t top = shape_->node_size - 1 - new_p;
  if (new_p > 0) {
    // All keys share the first new_p bytes; take them from any entry.
    std::memcpy(data_ + top, entries.front().key.data(), new_p);
  }
  uint32_t w = top;
  for (uint32_t i = 0; i < entries.size(); i++) {
    const VarEntry& e = entries[i];
    const uint32_t slen = static_cast<uint32_t>(e.key.size()) - new_p;
    const uint32_t eb = slen + static_cast<uint32_t>(e.payload.size());
    w -= eb;
    std::memcpy(data_ + w, e.key.data() + new_p, slen);
    std::memcpy(data_ + w + slen, e.payload.data(), e.payload.size());
    uint8_t* slot = data_ + VarSlotOffset(i);
    const uint16_t off16 = static_cast<uint16_t>(w);
    std::memcpy(slot, &off16, 2);
    slot[2] = static_cast<uint8_t>(slen);
    slot[3] = VarFingerprint(Slice(e.key.data(), e.key.size()));
    std::memcpy(slot + 4, &e.vlen, 2);
    slot[6] = e.outline ? kVarFlagOutline : 0;
    slot[7] = 0;
  }
  set_prefix_len(static_cast<uint8_t>(new_p));
  set_heap_watermark(static_cast<uint16_t>(w));
  set_dead_bytes(0);
  return true;
}

void NodeView::VarCompact() {
  // Defragment under the CURRENT prefix: a mid-insert compaction must not
  // grow the prefix out from under a key that shares less of it.
  SHERMAN_CHECK(VarRebuildWithPrefix(prefix_len()));
}

bool NodeView::VarInsert(const Slice& key, const uint8_t* payload,
                         uint32_t payload_len, uint16_t vlen, bool outline) {
  SHERMAN_CHECK(key.size() > 0 && key.size() <= shape_->max_key_len);
  uint32_t p = prefix_len();
  if (count() == 0) {
    if (p != 0) {
      set_prefix_len(0);
      set_heap_watermark(static_cast<uint16_t>(shape_->node_size - 1));
      p = 0;
    }
  } else if (p > 0) {
    // Shrink the page prefix to what the new key shares with it.
    uint32_t shared = 0;
    const Slice pfx = VarPrefix();
    while (shared < p && shared < key.size() &&
           key.data()[shared] == pfx.data()[shared]) {
      shared++;
    }
    if (shared < p) {
      if (!VarRebuildWithPrefix(shared)) return false;
      p = shared;
    }
  }
  const uint32_t slen = static_cast<uint32_t>(key.size()) - p;
  SHERMAN_CHECK(slen <= 255);
  const uint32_t eb = slen + payload_len;
  const uint32_t i = VarFind(key);
  if (i != UINT32_MAX) {
    // Update. Same-size payload rewrites in place; otherwise the old heap
    // entry goes dead and a fresh one is carved.
    const uint32_t old_payload = VarEntryBytes(i) - VarSuffixLen(i);
    uint8_t* slot = data_ + VarSlotOffset(i);
    if (old_payload == payload_len) {
      std::memcpy(data_ + VarEntryOff(i) + slen, payload, payload_len);
      std::memcpy(slot + 4, &vlen, 2);
      slot[6] = outline ? kVarFlagOutline : 0;
      return true;
    }
    const uint32_t dead = VarEntryBytes(i);
    if (VarFreeBytes() < eb) {
      if (VarFreeBytes() + dead_bytes() + dead < eb) return false;
      set_dead_bytes(static_cast<uint16_t>(dead_bytes() + dead));
      // Park the slot's length so compaction skips the old entry bytes:
      // compaction rebuilds from full keys + payloads, so just compact
      // after re-pointing the slot at a zero-length payload is unsound —
      // instead drop the slot and fall through to a fresh insert.
      VarRemoveAt(i);
      VarCompact();
      return VarInsert(key, payload, payload_len, vlen, outline);
    }
    set_dead_bytes(static_cast<uint16_t>(dead_bytes() + dead));
    const uint16_t w = static_cast<uint16_t>(heap_watermark() - eb);
    std::memcpy(data_ + w, key.data() + p, slen);
    std::memcpy(data_ + w + slen, payload, payload_len);
    std::memcpy(slot, &w, 2);
    slot[2] = static_cast<uint8_t>(slen);
    std::memcpy(slot + 4, &vlen, 2);
    slot[6] = outline ? kVarFlagOutline : 0;
    set_heap_watermark(w);
    return true;
  }
  // Fresh insert: needs a slot + a heap entry.
  const uint32_t need = kVarSlotSize + eb;
  if (VarFreeBytes() < need) {
    if (VarFreeBytes() + dead_bytes() < need) return false;
    VarCompact();
    if (VarFreeBytes() < need) return false;
  }
  const uint32_t pos = VarLowerBound(key);
  const uint32_t n = count();
  const uint16_t w = static_cast<uint16_t>(heap_watermark() - eb);
  std::memcpy(data_ + w, key.data() + p, slen);
  std::memcpy(data_ + w + slen, payload, payload_len);
  std::memmove(data_ + VarSlotOffset(pos + 1), data_ + VarSlotOffset(pos),
               static_cast<size_t>(n - pos) * kVarSlotSize);
  uint8_t* slot = data_ + VarSlotOffset(pos);
  std::memcpy(slot, &w, 2);
  slot[2] = static_cast<uint8_t>(slen);
  slot[3] = VarFingerprint(key);
  std::memcpy(slot + 4, &vlen, 2);
  slot[6] = outline ? kVarFlagOutline : 0;
  slot[7] = 0;
  set_heap_watermark(w);
  set_count(static_cast<uint16_t>(n + 1));
  return true;
}

void NodeView::VarRemoveAt(uint32_t i) {
  const uint32_t n = count();
  SHERMAN_CHECK(i < n);
  set_dead_bytes(static_cast<uint16_t>(dead_bytes() + VarEntryBytes(i)));
  std::memmove(data_ + VarSlotOffset(i), data_ + VarSlotOffset(i + 1),
               static_cast<size_t>(n - i - 1) * kVarSlotSize);
  set_count(static_cast<uint16_t>(n - 1));
}

std::vector<VarEntry> ExtractVarEntries(const NodeView& v) {
  std::vector<VarEntry> out;
  const uint32_t n = v.count();
  out.reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    VarEntry e;
    e.key = v.VarFullKey(i);
    const uint32_t payload = v.VarEntryBytes(i) - v.VarSuffixLen(i);
    const uint8_t* base = v.data() + v.VarEntryOff(i) + v.VarSuffixLen(i);
    e.payload.assign(base, base + payload);
    e.vlen = v.VarVlen(i);
    e.outline = v.VarOutline(i);
    out.push_back(std::move(e));
  }
  return out;
}

uint32_t VarCommonPrefix(const std::vector<VarEntry>& entries) {
  if (entries.empty()) return 0;
  const std::string& a = entries.front().key;
  const std::string& b = entries.back().key;
  uint32_t p = 0;
  const uint32_t max =
      static_cast<uint32_t>(a.size() < b.size() ? a.size() : b.size());
  while (p < max && a[p] == b[p]) p++;
  return p < 255 ? p : 255;
}

uint32_t VarBytesNeeded(const std::vector<VarEntry>& entries, uint32_t p) {
  uint32_t bytes = p;
  for (const VarEntry& e : entries) bytes += kVarSlotSize + e.heap_bytes(p);
  return bytes;
}

bool BuildVarLeaf(NodeView* v, const std::vector<VarEntry>& entries) {
  const uint32_t p = VarCommonPrefix(entries);
  if (VarBytesNeeded(entries, p) > v->shape().var_usable_bytes()) {
    return false;
  }
  for (size_t i = 0; i < entries.size(); i++) {
    const VarEntry& e = entries[i];
    // Per-entry suffixes must respect the u8 length field, including after
    // a later diverging insert shrinks the prefix back to 0.
    if (e.key.size() > 255) return false;
    // Direct construction below assumes sorted unique input (every caller
    // passes extracted-in-slot-order or loader-verified entries).
    if (i > 0 && !(entries[i - 1].key < e.key)) return false;
  }
  // Write the final compressed layout directly under the maximal prefix.
  // Staging through VarInsert (prefix 0, full keys) can overflow a page
  // whose entries only fit WITH the shared prefix factored out — the
  // budget check above is against the compressed size.
  const uint32_t top = v->shape().node_size - 1 - p;
  if (p > 0) std::memcpy(v->data() + top, entries.front().key.data(), p);
  v->set_prefix_len(static_cast<uint8_t>(p));
  v->set_dead_bytes(0);
  uint32_t w = top;
  for (uint32_t i = 0; i < entries.size(); i++) {
    const VarEntry& e = entries[i];
    const uint32_t slen = static_cast<uint32_t>(e.key.size()) - p;
    const uint32_t eb = slen + static_cast<uint32_t>(e.payload.size());
    w -= eb;
    std::memcpy(v->data() + w, e.key.data() + p, slen);
    std::memcpy(v->data() + w + slen, e.payload.data(), e.payload.size());
    uint8_t* slot = v->data() + v->VarSlotOffset(i);
    const uint16_t off16 = static_cast<uint16_t>(w);
    std::memcpy(slot, &off16, 2);
    slot[2] = static_cast<uint8_t>(slen);
    slot[3] = NodeView::VarFingerprint(Slice(e.key.data(), e.key.size()));
    std::memcpy(slot + 4, &e.vlen, 2);
    slot[6] = e.outline ? kVarFlagOutline : 0;
    slot[7] = 0;
  }
  v->set_count(static_cast<uint16_t>(entries.size()));
  v->set_heap_watermark(static_cast<uint16_t>(w));
  return true;
}

bool VarLeafFits(const NodeView& dst, const NodeView& src) {
  if (dst.count() == 0) return src.VarLiveBytes() <= src.shape().var_usable_bytes();
  if (src.count() == 0) return true;
  // Merged prefix = LCP(dst's first key, src's last key); exact total
  // under that prefix (suffixes grow when the prefix shrinks).
  const std::string lo = dst.VarFullKey(0);
  const std::string hi = src.VarFullKey(src.count() - 1);
  uint32_t p = 0;
  const uint32_t max =
      static_cast<uint32_t>(lo.size() < hi.size() ? lo.size() : hi.size());
  while (p < max && lo[p] == hi[p]) p++;
  if (p > 255) p = 255;
  uint64_t bytes = p;
  for (uint32_t i = 0; i < dst.count(); i++) {
    bytes += kVarSlotSize + dst.VarFullKey(i).size() - p +
             (dst.VarEntryBytes(i) - dst.VarSuffixLen(i));
  }
  for (uint32_t i = 0; i < src.count(); i++) {
    bytes += kVarSlotSize + src.VarFullKey(i).size() - p +
             (src.VarEntryBytes(i) - src.VarSuffixLen(i));
  }
  return bytes <= dst.shape().var_usable_bytes();
}

void MoveVarLeafEntries(NodeView* dst, const NodeView& src) {
  std::vector<VarEntry> merged = ExtractVarEntries(*dst);
  std::vector<VarEntry> tail = ExtractVarEntries(src);
  merged.insert(merged.end(), std::make_move_iterator(tail.begin()),
                std::make_move_iterator(tail.end()));
  SHERMAN_CHECK(BuildVarLeaf(dst, merged));
}

void NodeView::SetInternalEntry(uint32_t i, Key key,
                                rdma::GlobalAddress child) {
  const uint32_t off = InternalEntryOffset(i);
  Store64(off, key);
  if (shape_->key_size > 8) {
    std::memset(data_ + off + 8, 0, shape_->key_size - 8);
  }
  Store64(off + shape_->key_size, child.ToU64());
}

rdma::GlobalAddress NodeView::InternalChildFor(Key key) const {
  // Largest entry key <= key; below all entry keys -> leftmost child.
  const uint32_t n = count();
  uint32_t lo = 0, hi = n;
  while (lo < hi) {
    const uint32_t mid = (lo + hi) / 2;
    if (InternalKey(mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? leftmost_child() : InternalChild(lo - 1);
}

bool NodeView::InternalInsert(Key key, rdma::GlobalAddress child) {
  const uint32_t n = count();
  uint32_t pos = 0;
  while (pos < n && InternalKey(pos) < key) pos++;
  if (pos < n && InternalKey(pos) == key) {
    SetInternalEntry(pos, key, child);  // idempotent re-insert after retry
    return true;
  }
  if (n >= shape_->internal_capacity()) return false;
  const uint32_t esz = shape_->internal_entry_size();
  std::memmove(data_ + InternalEntryOffset(pos + 1),
               data_ + InternalEntryOffset(pos),
               static_cast<size_t>(n - pos) * esz);
  SetInternalEntry(pos, key, child);
  set_count(static_cast<uint16_t>(n + 1));
  return true;
}

bool NodeView::InternalRemove(Key key, rdma::GlobalAddress child) {
  const uint32_t n = count();
  for (uint32_t i = 0; i < n; i++) {
    if (InternalKey(i) == key && InternalChild(i) == child) {
      const uint32_t esz = shape_->internal_entry_size();
      std::memmove(data_ + InternalEntryOffset(i),
                   data_ + InternalEntryOffset(i + 1),
                   static_cast<size_t>(n - i - 1) * esz);
      set_count(static_cast<uint16_t>(n - 1));
      return true;
    }
  }
  return false;
}

void NodeView::InitLeaf(Key lo, Key hi, rdma::GlobalAddress sibling) {
  std::memset(data_, 0, shape_->node_size);
  data_[kOffFlags] = kFlagLeaf;
  set_level(0);
  set_lo_fence(lo);
  set_hi_fence(hi);
  set_sibling(sibling);
  if (shape_->varlen) {
    // Empty slotted page: heap starts at the RNV byte, no prefix yet.
    set_heap_watermark(static_cast<uint16_t>(shape_->node_size - 1));
  }
}

void NodeView::InitInternal(uint8_t level, Key lo, Key hi,
                            rdma::GlobalAddress sibling,
                            rdma::GlobalAddress leftmost) {
  std::memset(data_, 0, shape_->node_size);
  set_level(level);
  set_lo_fence(lo);
  set_hi_fence(hi);
  set_sibling(sibling);
  set_leftmost_child(leftmost);
}

void MoveLeafEntries(NodeView* dst, const NodeView& src, bool two_level) {
  const TreeShape& shape = src.shape();
  if (two_level) {
    const uint32_t cap = shape.leaf_capacity();
    uint32_t di = 0;
    for (uint32_t i = 0; i < cap; i++) {
      const Key k = src.LeafKey(i);
      if (k == kNullKey) continue;
      while (dst->LeafKey(di) != kNullKey) di++;
      dst->SetLeafEntry(di, k, src.LeafValue(i));
    }
  } else {
    const uint32_t esz = shape.leaf_entry_size();
    uint32_t n = dst->count();
    const uint32_t sn = src.count();
    for (uint32_t i = 0; i < sn; i++) {
      dst->SetLeafEntryRaw(n, src.LeafKey(i), src.LeafValue(i));
      dst->data()[dst->LeafEntryOffset(n)] = 0;  // fresh entry versions
      dst->data()[dst->LeafEntryOffset(n) + esz - 1] = 0;
      n++;
    }
    dst->set_count(static_cast<uint16_t>(n));
  }
}

rdma::GlobalAddress ParsedInternal::ChildFor(Key key) const {
  // Largest entry key <= key, else leftmost.
  uint32_t lo_i = 0, hi_i = static_cast<uint32_t>(entries.size());
  while (lo_i < hi_i) {
    const uint32_t mid = (lo_i + hi_i) / 2;
    if (entries[mid].first <= key) {
      lo_i = mid + 1;
    } else {
      hi_i = mid;
    }
  }
  return lo_i == 0 ? leftmost : entries[lo_i - 1].second;
}

rdma::GlobalAddress ParsedInternal::ChildAfter(Key key, uint32_t skip) const {
  // Index of the child covering `key`: 0 = leftmost, i+1 = entries[i].
  uint32_t lo_i = 0, hi_i = static_cast<uint32_t>(entries.size());
  while (lo_i < hi_i) {
    const uint32_t mid = (lo_i + hi_i) / 2;
    if (entries[mid].first <= key) {
      lo_i = mid + 1;
    } else {
      hi_i = mid;
    }
  }
  const uint64_t idx = lo_i + skip;  // children are [leftmost, entries...]
  if (idx == 0) return leftmost;
  if (idx <= entries.size()) return entries[idx - 1].second;
  return rdma::kNullAddress;
}

Status ParseInternal(const uint8_t* buf, const TreeShape& shape,
                     rdma::GlobalAddress self, ParsedInternal* out) {
  NodeView view(const_cast<uint8_t*>(buf), &shape);
  if (!view.NodeVersionsMatch()) {
    return Status::Retry("internal node version mismatch");
  }
  if (view.is_leaf()) {
    return Status::Corruption("expected internal node, found leaf");
  }
  if (view.is_free()) {
    return Status::Retry("internal node freed");
  }
  const uint32_t n = view.count();
  if (n > shape.internal_capacity()) {
    return Status::Corruption("internal count out of range");
  }
  out->self = self;
  out->level = view.level();
  out->lo = view.lo_fence();
  out->hi = view.hi_fence();
  out->sibling = view.sibling();
  out->leftmost = view.leftmost_child();
  out->entries.clear();
  out->entries.reserve(n);
  Key prev = 0;
  for (uint32_t i = 0; i < n; i++) {
    const Key k = view.InternalKey(i);
    if (i > 0 && k <= prev) {
      return Status::Retry("internal keys out of order (torn read)");
    }
    prev = k;
    out->entries.emplace_back(k, view.InternalChild(i));
  }
  // The node-version match above IS this buffer's torn-read validation;
  // tell DMSan its taint (if any) is discharged.
  if (dmsan::Active()) dmsan::NoteValidatedAll(buf, shape.node_size);
  return Status::OK();
}

}  // namespace sherman
