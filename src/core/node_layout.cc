#include "core/node_layout.h"

#include <algorithm>
#include <cstring>

#include "sanitizer/dmsan.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace sherman {

uint32_t TreeShape::leaf_capacity() const {
  return (node_size - kHeaderSize - 1) / leaf_entry_size();
}

uint32_t TreeShape::internal_capacity() const {
  return (node_size - kOffLeftmostChild - 8 - 1) / internal_entry_size();
}

uint64_t NodeView::Load64(uint32_t off) const {
  uint64_t v;
  std::memcpy(&v, data_ + off, 8);
  return v;
}

void NodeView::Store64(uint32_t off, uint64_t v) {
  std::memcpy(data_ + off, &v, 8);
}

void NodeView::BumpNodeVersions() {
  data_[kOffFnv] = (front_version() + 1) & 0xf;
  data_[shape_->node_size - 1] = (rear_version() + 1) & 0xf;
}

void NodeView::set_free(bool free) {
  if (free) {
    data_[kOffFlags] |= kFlagFree;
  } else {
    data_[kOffFlags] &= static_cast<uint8_t>(~kFlagFree);
  }
}

uint16_t NodeView::count() const {
  uint16_t c;
  std::memcpy(&c, data_ + kOffCount, 2);
  return c;
}

void NodeView::set_count(uint16_t c) { std::memcpy(data_ + kOffCount, &c, 2); }

uint32_t NodeView::stored_checksum() const {
  uint32_t c;
  std::memcpy(&c, data_ + kOffChecksum, 4);
  return c;
}

uint32_t NodeView::ComputeChecksum() const {
  // Everything before and after the 4-byte checksum field.
  uint32_t crc = Crc32c(data_, kOffChecksum);
  crc = Crc32c(data_ + kOffChecksum + 4, shape_->node_size - kOffChecksum - 4,
               crc);
  return crc;
}

void NodeView::UpdateChecksum() {
  const uint32_t crc = ComputeChecksum();
  std::memcpy(data_ + kOffChecksum, &crc, 4);
}

void NodeView::SetLeafEntryRaw(uint32_t i, Key key, uint64_t value) {
  const uint32_t off = LeafEntryOffset(i);
  Store64(off + 1, key);
  // Zero-pad wide keys so serialized bytes are deterministic.
  if (shape_->key_size > 8) {
    std::memset(data_ + off + 1 + 8, 0, shape_->key_size - 8);
  }
  Store64(off + 1 + shape_->key_size, value);
  if (shape_->value_size > 8) {
    std::memset(data_ + off + 1 + shape_->key_size + 8, 0,
                shape_->value_size - 8);
  }
}

void NodeView::SetLeafEntry(uint32_t i, Key key, uint64_t value) {
  SetLeafEntryRaw(i, key, value);
  const uint32_t off = LeafEntryOffset(i);
  data_[off] = (data_[off] + 1) & 0xf;  // FEV
  const uint32_t rear = off + shape_->leaf_entry_size() - 1;
  data_[rear] = (data_[rear] + 1) & 0xf;  // REV
}

NodeView::SlotResult NodeView::FindLeafSlot(Key key) const {
  SlotResult r;
  const uint32_t cap = shape_->leaf_capacity();
  for (uint32_t i = 0; i < cap; i++) {
    const Key k = LeafKey(i);
    if (k == key) {
      r.match = i;
      return r;
    }
    if (k == kNullKey && r.empty == UINT32_MAX) r.empty = i;
  }
  return r;
}

uint32_t NodeView::SortedLeafFind(Key key) const {
  uint32_t lo = 0, hi = count();
  while (lo < hi) {
    const uint32_t mid = (lo + hi) / 2;
    const Key k = LeafKey(mid);
    if (k == key) return mid;
    if (k < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return UINT32_MAX;
}

bool NodeView::SortedLeafInsert(Key key, uint64_t value) {
  const uint32_t n = count();
  // Update in place if present.
  const uint32_t found = SortedLeafFind(key);
  if (found != UINT32_MAX) {
    SetLeafEntryRaw(found, key, value);
    return true;
  }
  if (n >= shape_->leaf_capacity()) return false;
  // Find insertion point and shift the tail right by one entry.
  uint32_t pos = 0;
  while (pos < n && LeafKey(pos) < key) pos++;
  const uint32_t esz = shape_->leaf_entry_size();
  std::memmove(data_ + LeafEntryOffset(pos + 1), data_ + LeafEntryOffset(pos),
               static_cast<size_t>(n - pos) * esz);
  SetLeafEntryRaw(pos, key, value);
  data_[LeafEntryOffset(pos)] = 0;  // fresh entry versions
  data_[LeafEntryOffset(pos) + esz - 1] = 0;
  set_count(static_cast<uint16_t>(n + 1));
  return true;
}

bool NodeView::SortedLeafRemove(Key key) {
  const uint32_t found = SortedLeafFind(key);
  if (found == UINT32_MAX) return false;
  SortedLeafRemoveAt(found);
  return true;
}

void NodeView::SortedLeafRemoveAt(uint32_t i) {
  const uint32_t n = count();
  const uint32_t esz = shape_->leaf_entry_size();
  std::memmove(data_ + LeafEntryOffset(i), data_ + LeafEntryOffset(i + 1),
               static_cast<size_t>(n - i - 1) * esz);
  set_count(static_cast<uint16_t>(n - 1));
}

uint32_t NodeView::LiveLeafEntries(bool two_level) const {
  if (!two_level) return count();
  uint32_t live = 0;
  const uint32_t cap = shape_->leaf_capacity();
  for (uint32_t i = 0; i < cap; i++) {
    if (LeafKey(i) != kNullKey) live++;
  }
  return live;
}

void NodeView::SetInternalEntry(uint32_t i, Key key,
                                rdma::GlobalAddress child) {
  const uint32_t off = InternalEntryOffset(i);
  Store64(off, key);
  if (shape_->key_size > 8) {
    std::memset(data_ + off + 8, 0, shape_->key_size - 8);
  }
  Store64(off + shape_->key_size, child.ToU64());
}

rdma::GlobalAddress NodeView::InternalChildFor(Key key) const {
  // Largest entry key <= key; below all entry keys -> leftmost child.
  const uint32_t n = count();
  uint32_t lo = 0, hi = n;
  while (lo < hi) {
    const uint32_t mid = (lo + hi) / 2;
    if (InternalKey(mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? leftmost_child() : InternalChild(lo - 1);
}

bool NodeView::InternalInsert(Key key, rdma::GlobalAddress child) {
  const uint32_t n = count();
  uint32_t pos = 0;
  while (pos < n && InternalKey(pos) < key) pos++;
  if (pos < n && InternalKey(pos) == key) {
    SetInternalEntry(pos, key, child);  // idempotent re-insert after retry
    return true;
  }
  if (n >= shape_->internal_capacity()) return false;
  const uint32_t esz = shape_->internal_entry_size();
  std::memmove(data_ + InternalEntryOffset(pos + 1),
               data_ + InternalEntryOffset(pos),
               static_cast<size_t>(n - pos) * esz);
  SetInternalEntry(pos, key, child);
  set_count(static_cast<uint16_t>(n + 1));
  return true;
}

bool NodeView::InternalRemove(Key key, rdma::GlobalAddress child) {
  const uint32_t n = count();
  for (uint32_t i = 0; i < n; i++) {
    if (InternalKey(i) == key && InternalChild(i) == child) {
      const uint32_t esz = shape_->internal_entry_size();
      std::memmove(data_ + InternalEntryOffset(i),
                   data_ + InternalEntryOffset(i + 1),
                   static_cast<size_t>(n - i - 1) * esz);
      set_count(static_cast<uint16_t>(n - 1));
      return true;
    }
  }
  return false;
}

void NodeView::InitLeaf(Key lo, Key hi, rdma::GlobalAddress sibling) {
  std::memset(data_, 0, shape_->node_size);
  data_[kOffFlags] = kFlagLeaf;
  set_level(0);
  set_lo_fence(lo);
  set_hi_fence(hi);
  set_sibling(sibling);
}

void NodeView::InitInternal(uint8_t level, Key lo, Key hi,
                            rdma::GlobalAddress sibling,
                            rdma::GlobalAddress leftmost) {
  std::memset(data_, 0, shape_->node_size);
  set_level(level);
  set_lo_fence(lo);
  set_hi_fence(hi);
  set_sibling(sibling);
  set_leftmost_child(leftmost);
}

void MoveLeafEntries(NodeView* dst, const NodeView& src, bool two_level) {
  const TreeShape& shape = src.shape();
  if (two_level) {
    const uint32_t cap = shape.leaf_capacity();
    uint32_t di = 0;
    for (uint32_t i = 0; i < cap; i++) {
      const Key k = src.LeafKey(i);
      if (k == kNullKey) continue;
      while (dst->LeafKey(di) != kNullKey) di++;
      dst->SetLeafEntry(di, k, src.LeafValue(i));
    }
  } else {
    const uint32_t esz = shape.leaf_entry_size();
    uint32_t n = dst->count();
    const uint32_t sn = src.count();
    for (uint32_t i = 0; i < sn; i++) {
      dst->SetLeafEntryRaw(n, src.LeafKey(i), src.LeafValue(i));
      dst->data()[dst->LeafEntryOffset(n)] = 0;  // fresh entry versions
      dst->data()[dst->LeafEntryOffset(n) + esz - 1] = 0;
      n++;
    }
    dst->set_count(static_cast<uint16_t>(n));
  }
}

rdma::GlobalAddress ParsedInternal::ChildFor(Key key) const {
  // Largest entry key <= key, else leftmost.
  uint32_t lo_i = 0, hi_i = static_cast<uint32_t>(entries.size());
  while (lo_i < hi_i) {
    const uint32_t mid = (lo_i + hi_i) / 2;
    if (entries[mid].first <= key) {
      lo_i = mid + 1;
    } else {
      hi_i = mid;
    }
  }
  return lo_i == 0 ? leftmost : entries[lo_i - 1].second;
}

rdma::GlobalAddress ParsedInternal::ChildAfter(Key key, uint32_t skip) const {
  // Index of the child covering `key`: 0 = leftmost, i+1 = entries[i].
  uint32_t lo_i = 0, hi_i = static_cast<uint32_t>(entries.size());
  while (lo_i < hi_i) {
    const uint32_t mid = (lo_i + hi_i) / 2;
    if (entries[mid].first <= key) {
      lo_i = mid + 1;
    } else {
      hi_i = mid;
    }
  }
  const uint64_t idx = lo_i + skip;  // children are [leftmost, entries...]
  if (idx == 0) return leftmost;
  if (idx <= entries.size()) return entries[idx - 1].second;
  return rdma::kNullAddress;
}

Status ParseInternal(const uint8_t* buf, const TreeShape& shape,
                     rdma::GlobalAddress self, ParsedInternal* out) {
  NodeView view(const_cast<uint8_t*>(buf), &shape);
  if (!view.NodeVersionsMatch()) {
    return Status::Retry("internal node version mismatch");
  }
  if (view.is_leaf()) {
    return Status::Corruption("expected internal node, found leaf");
  }
  if (view.is_free()) {
    return Status::Retry("internal node freed");
  }
  const uint32_t n = view.count();
  if (n > shape.internal_capacity()) {
    return Status::Corruption("internal count out of range");
  }
  out->self = self;
  out->level = view.level();
  out->lo = view.lo_fence();
  out->hi = view.hi_fence();
  out->sibling = view.sibling();
  out->leftmost = view.leftmost_child();
  out->entries.clear();
  out->entries.reserve(n);
  Key prev = 0;
  for (uint32_t i = 0; i < n; i++) {
    const Key k = view.InternalKey(i);
    if (i > 0 && k <= prev) {
      return Status::Retry("internal keys out of order (torn read)");
    }
    prev = k;
    out->entries.emplace_back(k, view.InternalChild(i));
  }
  // The node-version match above IS this buffer's torn-read validation;
  // tell DMSan its taint (if any) is discharged.
  if (dmsan::Active()) dmsan::NoteValidatedAll(buf, shape.node_size);
  return Status::OK();
}

}  // namespace sherman
