// Sherman: a write-optimized distributed B+Tree on disaggregated memory.
//
// The tree is a B-link tree (§4.2.1): every node carries fence keys, its
// level, and a sibling pointer, so traversals remain correct under
// concurrent splits by chasing siblings. Values live in leaves; internal
// nodes are sorted; leaves are unsorted with per-entry version pairs in
// Sherman mode (§4.4) or sorted with a checksum in FG mode (§3.1.1).
//
// Concurrency control (§4.2.2): exclusive per-node HOCL locks resolve
// write-write conflicts; lock-free reads with (two-level) version or
// checksum validation resolve read-write conflicts.
//
// Every paper technique is a TreeOptions toggle, so the FG+ baseline and
// each ablation stage of Figures 10/11/16 are ordinary configurations (see
// core/presets.h).
//
// Usage (see examples/quickstart.cc):
//   rdma::FabricConfig fcfg;            // topology + NIC model
//   TreeOptions topts = ShermanOptions();
//   ShermanSystem system(fcfg, topts);
//   system.BulkLoad(sorted_kvs, 0.8);
//   TreeClient& client = system.client(/*cs_id=*/0);
//   sim::Spawn(RunMyWorkload(&client));  // coroutines issue Insert/Lookup/...
//   system.fabric().simulator().Run();
#ifndef SHERMAN_CORE_BTREE_H_
#define SHERMAN_CORE_BTREE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "alloc/chunk_manager.h"
#include "alloc/cs_allocator.h"
#include "alloc/reclaim.h"
#include "cache/index_cache.h"
#include "cache/leaf_hints.h"
#include "core/node_layout.h"
#include "core/stats.h"
#include "lock/hocl.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rdma/fabric.h"
#include "recover/intent.h"
#include "sanitizer/dmsan.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace sherman {

namespace migrate {
class Migrator;  // drives live shard migration through TreeClient internals
}
namespace recover {
class Recoverer;  // replays/rolls back in-doubt intents of crashed clients
}

struct TreeOptions {
  TreeShape shape;

  // Command combination (§4.5): doorbell-batch dependent writes (write-back
  // + lock release) instead of awaiting each round trip.
  bool combine_commands = true;

  // Two-level versions (§4.4): unsorted leaves with per-entry version
  // pairs; plain insert/delete writes back only the touched entry. When
  // false, leaves are sorted and whole nodes are written back (FG).
  bool two_level_versions = true;

  // How lock-free readers validate a fetched node.
  enum class Consistency { kVersions, kChecksum };
  Consistency consistency = Consistency::kVersions;

  // HOCL configuration (§4.3) — on-chip / hierarchical / wait-queue /
  // handover toggles.
  HoclOptions lock;

  // Index cache (§4.2.3).
  bool enable_cache = true;
  uint64_t cache_bytes = 4ull << 20;

  // Leaf-hint sidecar (src/cache/leaf_hints.h): per-MS hint tables that
  // let a client with no cached path serve a cold point lookup with ONE
  // fingerprint-validated leaf READ. Advisory only — a stale or missing
  // hint falls back to full traversal; correctness never depends on it.
  bool enable_leaf_hints = false;
  // After this many stale/chased hints since the last mirror fetch, the
  // client refetches the MS tables (cheap: one header READ per MS plus
  // the entry array of any MS whose generation moved).
  uint32_t hint_refresh_miss_threshold = 8;

  // Space reclamation under delete churn: when a delete leaves a leaf with
  // fewer than merge_threshold * leaf_capacity live entries, the deleter
  // merges the survivors into the left sibling (under leaf + sibling +
  // parent HOCL locks), tombstones the empty leaf, and returns its memory
  // to the owning MS's epoch-protected grace list (alloc/reclaim.h).
  // 0 disables merging (the released Sherman artifact's behaviour: deletes
  // only null the slot and leaves are never reclaimed).
  double merge_threshold = 0.25;

  // --- variable-length records (shape.varlen mode) ---
  // Values longer than this go OUT-OF-LINE into the per-MS value log
  // (src/vlog/): the leaf slot keeps an 8-byte packed pointer and the
  // bytes live in a log extent. Values at or below it stay inline in the
  // leaf heap.
  uint32_t inline_threshold = 64;
  // Segment size the value log carves from the chunk allocator (one open
  // segment per size class per client). Must hold at least one extent of
  // the largest class (8 KB) and at most 65535 of the smallest (64 B).
  uint32_t vlog_segment_bytes = 64 << 10;
  // GC victim threshold: a sealed segment with at least this many dead
  // extents per thousand written is eligible for VlogGcOnce relocation.
  uint32_t vlog_gc_dead_permille = 250;

  // 4-bit version wraparound guard (§4.4): re-read when a READ took longer
  // than this.
  sim::SimTime version_wrap_retry_ns = 8000;

  // Safety caps (simulation hygiene; generously above anything the paper's
  // workloads produce).
  uint32_t max_read_retries = 4096;
  uint32_t max_restarts = 256;

  void Validate() const;
};

class ShermanSystem;

namespace vlog {
class VlogClient;
}

// Per-key answer of MultiGetVar.
struct VarGetResult {
  Status status = Status::NotFound();
  std::string value;
};

// Per-compute-server tree handle, shared by that CS's client threads
// (coroutines). All operations are coroutines driven by the fabric's
// simulator.
class TreeClient {
 public:
  TreeClient(ShermanSystem* system, int cs_id);
  ~TreeClient();

  TreeClient(const TreeClient&) = delete;
  TreeClient& operator=(const TreeClient&) = delete;

  // Inserts or updates (the paper folds updates into inserts).
  sim::Task<Status> Insert(Key key, uint64_t value, OpStats* stats = nullptr);

  // Point lookup. Returns NotFound if absent.
  sim::Task<Status> Lookup(Key key, uint64_t* value, OpStats* stats = nullptr);

  // Deletes `key` (clears the entry). When the leaf drops below the merge
  // threshold the deleter additionally merges the survivors into the left
  // sibling and reclaims the leaf (see TreeOptions::merge_threshold).
  // Returns NotFound if absent.
  sim::Task<Status> Delete(Key key, OpStats* stats = nullptr);

  // Returns up to `count` key-ordered pairs with key >= from. Not atomic
  // with concurrent writes (§4.4, "Range query").
  sim::Task<Status> RangeQuery(Key from, uint32_t count,
                               std::vector<std::pair<Key, uint64_t>>* out,
                               OpStats* stats = nullptr);

  // Batched point lookups (doorbell batching §4.5 applied to independent
  // ops): plans every key to its leaf through the index cache — cache-
  // missing keys traverse concurrently, overlapping their descents — then
  // fetches all distinct target leaves with one doorbell-batched READ list
  // per memory server, validates each leaf locally, and re-serves any key
  // whose leaf failed validation (stale plan, torn read, concurrent split)
  // via the op-at-a-time path. out->at(i) answers keys[i]; per-key status
  // is OK or NotFound. Returns the first hard error, else OK.
  sim::Task<Status> MultiGet(std::vector<Key> keys,
                             std::vector<MultiGetResult>* out,
                             OpStats* stats = nullptr);

  // Batched inserts/updates: plans leaves like MultiGet, groups keys by
  // target leaf, and applies each group under a single lock acquisition
  // with the entry write-backs and the lock release combined into one
  // doorbell batch. Keys the planned leaf cannot serve (split needed,
  // fence moved) fall back to Insert(). Groups for distinct leaves
  // proceed concurrently, pipelining their lock/read/write round trips.
  sim::Task<Status> MultiInsert(std::vector<std::pair<Key, uint64_t>> kvs,
                                OpStats* stats = nullptr);

  // Batched deletes: plans leaves like MultiInsert, groups keys by target
  // leaf, and clears each group's entries under a single lock acquisition
  // with the entry writes and the lock release combined into one doorbell
  // batch. A group that leaves its leaf under the merge threshold runs the
  // same merge/reclaim logic as the singleton path. out->at(i) is OK or
  // NotFound for keys[i]; keys the planned leaf cannot serve fall back to
  // Delete().
  sim::Task<Status> MultiDelete(std::vector<Key> keys,
                                std::vector<Status>* out,
                                OpStats* stats = nullptr);

  // --- variable-length operations (shape.varlen mode only) ---
  // Keys are byte strings (1..shape.max_key_len bytes) routed through the
  // fixed u64 tree on RoutingKeyFor(key); values are byte strings up to
  // 64 KB. Values above inline_threshold live in the value log (src/vlog/).

  // Inserts or updates `key`. An update that crosses the inline threshold
  // in either direction relocates the value and retires the old extent.
  sim::Task<Status> InsertVar(const Slice& key, const Slice& value,
                              OpStats* stats = nullptr);
  // Point lookup; NotFound if absent. Out-of-line values cost one extra
  // READ, except on the swizzle fast path (cached leaf + cached pointer:
  // the leaf READ and the value READ are issued together and the leaf
  // validates the speculation).
  sim::Task<Status> LookupVar(const Slice& key, std::string* value,
                              OpStats* stats = nullptr);
  // Deletes `key`; retires its extent if out-of-line. NotFound if absent.
  sim::Task<Status> DeleteVar(const Slice& key, OpStats* stats = nullptr);
  // Up to `count` key-ordered pairs with key >= from (byte order). Not
  // atomic with concurrent writes, like RangeQuery.
  sim::Task<Status> ScanVar(const Slice& from, uint32_t count,
                            std::vector<std::pair<std::string, std::string>>* out,
                            OpStats* stats = nullptr);
  // Batched variable-length lookups: plans/fetches distinct leaves with
  // doorbell-batched READ lists (like MultiGet), then resolves out-of-line
  // values concurrently. out->at(i) answers keys[i].
  sim::Task<Status> MultiGetVar(std::vector<std::string> keys,
                                std::vector<VarGetResult>* out,
                                OpStats* stats = nullptr);
  // Batched variable-length inserts: appends out-of-line values up front,
  // then groups keys by target leaf and applies each group under one lock
  // (like MultiInsert). Unservable keys fall back to InsertVar.
  sim::Task<Status> MultiInsertVar(
      std::vector<std::pair<std::string, std::string>> kvs,
      OpStats* stats = nullptr);
  // One segment-GC pass: seals this client's open segments, claims at most
  // one victim per MS above vlog_gc_dead_permille, and relocates each live
  // record copy-then-flip (append fresh -> repoint the leaf under its lock
  // -> retire the old extent). `relocated` (optional) counts moved records.
  sim::Task<Status> VlogGcOnce(uint64_t* relocated = nullptr,
                               OpStats* stats = nullptr);
  // This client's value-log handle (valid only in varlen mode).
  vlog::VlogClient& vlog() { return *vlog_; }

  // Per-client reclamation counters (leaf merges, aborted attempts,
  // freed nodes).
  const ReclaimStats& reclaim_stats() const { return reclaim_stats_; }

  // Leaf-hint sidecar counters (enable_leaf_hints mode).
  struct HintStats {
    uint64_t consults = 0;     // the mirror was asked for a leaf address
    uint64_t served = 0;       // it supplied one
    uint64_t stale = 0;        // a hinted leaf failed validation
    uint64_t chases = 0;       // hinted leaf valid, key split off right
    uint64_t refreshes = 0;    // mirror fetches from the MS tables
    uint64_t publishes = 0;    // structural publishes issued
    uint64_t invalidates = 0;  // structural invalidates issued
  };
  const HintStats& hint_stats() const { return hint_stats_; }

  int cs_id() const { return cs_id_; }
  IndexCache& cache() { return cache_; }
  HoclClient& hocl() { return hocl_; }
  CsAllocator& allocator() { return allocator_; }
  // This client's crash recoverer. Wired as the HOCL recovery hook (lease
  // steals trigger it); also callable directly by an operator / failure
  // detector once a client is known dead.
  recover::Recoverer& recoverer() { return *recoverer_; }

 private:
  friend class ShermanSystem;
  // The migrator reuses the traversal/lock primitives below so its copy
  // passes pay the same simulated round trips as any other client.
  friend class migrate::Migrator;
  // The recoverer replays/rolls back crashed clients' structural ops with
  // the same primitives (and the same simulated round-trip costs).
  friend class recover::Recoverer;

  struct LeafRef {
    rdma::GlobalAddress addr;
    bool via_cache = false;
    bool via_hint = false;  // served by the leaf-hint mirror (advisory)
  };
  struct Locked {
    rdma::GlobalAddress addr;
    LockGuard guard;
  };
  // A node locked while other node locks are already held (leaf merging).
  // HOCL hashes node addresses into a finite lock table, so the second
  // node can collide onto a lane we already own; in that case it is
  // already exclusively ours (owned = false) and must not be re-acquired —
  // waiting on our own lane would self-deadlock.
  struct SecondLocked {
    rdma::GlobalAddress addr;
    LockGuard guard;
    bool owned = false;
  };

  const TreeOptions& opt() const;
  rdma::Qp& QpFor(rdma::GlobalAddress addr);
  uint32_t node_size() const { return opt().shape.node_size; }

  // One RDMA_READ of `len` bytes; counts a round trip.
  sim::Task<Status> ReadRaw(rdma::GlobalAddress addr, uint8_t* buf,
                            uint32_t len, OpStats* stats);
  // Lock-free node read with consistency validation + wraparound guard;
  // retries internally (bounded by max_read_retries).
  sim::Task<Status> ReadNodeChecked(rdma::GlobalAddress addr, uint8_t* buf,
                                    OpStats* stats);
  // Threshold for the 4-bit version wraparound guard (§4.4): a read
  // slower than this could span a full version cycle and must re-read
  // even with matching versions. Shared by the singleton checked read and
  // the batched leaf fetch; see the derivation at its definition.
  sim::SimTime WrapGuardNs() const;
  bool NodeConsistent(const uint8_t* buf) const;
  // Marks a locally staged node consistent for write-back: bumps node
  // versions (kVersions) or recomputes the checksum (kChecksum).
  void SealNode(NodeView& view, bool structural_change) const;

  // Root discovery: reads the root pointer from MS 0's meta region and the
  // root node itself.
  sim::Task<Status> LoadRoot(OpStats* stats);

  // Reads+parses the internal node at `addr` expected to (transitively)
  // cover `key`: retries torn reads, chases siblings when key >= hi fence.
  // Returns Retry when the caller must restart from the root (key fell
  // left of the node or the node was freed).
  sim::Task<Status> ReadInternalContaining(rdma::GlobalAddress addr, Key key,
                                           ParsedInternal* out,
                                           OpStats* stats);

  // Address of the node at `target_level` covering `key` (level 0 = leaf).
  // Requires target_level <= current root level.
  sim::Task<StatusOr<rdma::GlobalAddress>> FindNodeAddr(Key key,
                                                        uint8_t target_level,
                                                        OpStats* stats);
  // Leaf address via the index cache, falling back to the leaf-hint
  // mirror, falling back to traversal. Ops pass allow_hint=false on retry
  // attempts: a hint that already misled this op (validation failure,
  // sibling-chase exhaustion) must not be re-consulted, or an incomplete
  // hint table (entries dropped when full) livelocks the restart loop —
  // every re-resolution re-serves a mirror "predecessor" that is really
  // the entry left of a table hole.
  sim::Task<StatusOr<LeafRef>> FindLeafAddr(Key key, OpStats* stats,
                                            bool allow_hint = true);

  // Locks `addr`, reads it into `buf`, and chases siblings until the node's
  // fence interval contains `key` AND the node is at the expected `level`
  // (0 = leaf). Returns Retry if traversal must restart. The level check
  // is load-bearing under reclamation: a freed node's address can be
  // recycled into a node of a DIFFERENT role, so a stale cached address
  // may resolve to an internal node where a leaf once lived (or vice
  // versa) — fences alone cannot tell them apart.
  sim::Task<StatusOr<Locked>> LockAndRead(rdma::GlobalAddress addr, Key key,
                                          uint8_t* buf, OpStats* stats,
                                          uint8_t level = 0);

  // --- delete-path leaf merging (space reclamation) ---

  // Do `a` and `b` hash onto the same HOCL lock lane?
  bool SameLockLane(rdma::GlobalAddress a, rdma::GlobalAddress b) const;
  // LockAndRead with lane-collision handling against up to two locks the
  // caller already holds (the Migrator's two-lock technique generalized):
  // a lane shared with `held1`/`held2` is already ours and is not
  // re-acquired.
  sim::Task<StatusOr<SecondLocked>> LockSecondChasing(
      rdma::GlobalAddress addr, Key key, rdma::GlobalAddress held1,
      rdma::GlobalAddress held2, uint8_t* buf, OpStats* stats,
      uint8_t level);
  sim::Task<void> UnlockSecond(SecondLocked locked,
                               std::vector<rdma::WorkRequest> write_backs,
                               OpStats* stats);

  // Should the locked leaf in `view` (with `live` remaining entries) be
  // merged into its left sibling?
  bool MergeCandidate(const NodeView& view, uint32_t live) const;
  // Abort throttling: an aborted merge (leftmost child, unfit sibling, a
  // race) would otherwise re-attempt — and re-abort, at several round
  // trips a try — on every subsequent delete of the still-underflowed
  // leaf. After an abort the leaf backs off for a window of deletes.
  bool MergeBackoffExpired(rdma::GlobalAddress addr);
  void RecordMergeAbort(rdma::GlobalAddress addr);

  // Attempts to merge the LOCKED underflowed leaf (content staged in
  // `buf`, deletions already applied locally) into its left sibling:
  // locks sibling + parent (lane-collision aware), moves survivors, writes
  // the widened sibling, removes the parent entry, tombstones the leaf,
  // releases everything, and parks the leaf on the owning MS's grace
  // list. Returns true on success (the leaf lock is released); on any
  // race the secondary locks are released, nothing remote has changed,
  // the leaf stays locked, and the caller falls back to the plain
  // write-back + unlock.
  sim::Task<bool> TryMergeLeafLocked(const Locked& locked, uint8_t* buf,
                                     OpStats* stats);

  // Leaf split under lock (Figure 7, lines 18-35): allocates the sibling,
  // distributes entries, writes both nodes (+combined release), then
  // ascends.
  sim::Task<Status> SplitLeafAndUnlock(Locked locked, std::vector<uint8_t> buf,
                                       Key key, uint64_t value,
                                       OpStats* stats);

  // Inserts (sep -> child) into the internal level `level`, splitting and
  // recursing upward as needed.
  sim::Task<Status> InsertInternal(Key sep, rdma::GlobalAddress child,
                                   uint8_t level, OpStats* stats);

  // Installs a new root (level `level`) pointing at [old_root | sep ->
  // child] via CAS on the meta root pointer.
  sim::Task<Status> MakeNewRoot(Key sep, rdma::GlobalAddress child,
                                uint8_t level, OpStats* stats);

  // Parallel leaf fetch used by range queries.
  sim::Task<void> ReadInto(rdma::GlobalAddress addr, uint8_t* buf,
                           uint32_t len, sim::CountdownLatch* latch);

  // Reader escape hatch for crash recovery: lock-free readers never touch
  // lock lanes, so a reader bouncing off a node torn by a crashed writer
  // (a tombstoned leaf whose merge/flip never completed) would burn its
  // whole restart budget without ever triggering the lease machinery.
  // After repeated dead-end restarts the reader locks-and-releases the
  // offending node: the acquisition path observes the dead holder's
  // expired lease and runs recovery, and the next restart resolves
  // freshly. Against a LIVE structural op the probe merely waits out the
  // holder's release — a few extra round trips on an already-pathological
  // path.
  sim::Task<void> ProbeLockForRecovery(rdma::GlobalAddress addr,
                                       OpStats* stats);

  // --- batch-op plumbing (MultiGet / MultiInsert) ---

  // Concurrent planning step: resolves `key` to its leaf and stores the
  // result; always arrives at the latch.
  sim::Task<void> PlanLeafInto(Key key, LeafRef* ref, Status* st,
                               OpStats* stats, sim::CountdownLatch* latch);
  // Posts one doorbell-batched READ list to `ms_node` and arrives.
  sim::Task<void> PostReadsInto(uint16_t ms_node,
                                std::vector<rdma::WorkRequest> wrs,
                                OpStats* stats, sim::CountdownLatch* latch);
  // Applies one MultiInsert leaf group under a single lock; keys the leaf
  // cannot serve get their `defer` flag set for the singleton fallback.
  sim::Task<void> ApplyInsertGroup(rdma::GlobalAddress addr,
                                   std::vector<size_t> idxs,
                                   const std::vector<std::pair<Key, uint64_t>>* kvs,
                                   std::vector<uint8_t>* defer, OpStats* stats,
                                   sim::CountdownLatch* latch);
  // Clears one MultiDelete leaf group's entries under a single lock (and
  // runs the merge logic on underflow); unservable keys get `defer` set
  // for the singleton fallback.
  sim::Task<void> ApplyDeleteGroup(rdma::GlobalAddress addr,
                                   std::vector<size_t> idxs,
                                   const std::vector<Key>* keys,
                                   std::vector<Status>* out,
                                   std::vector<uint8_t>* defer, OpStats* stats,
                                   sim::CountdownLatch* latch);

  // --- varlen plumbing (btree_varlen.cc) ---

  // Rejects malformed varlen keys and computes the routing key.
  Status CheckVarKey(const Slice& key, Key* rk) const;
  // Leaf split for slotted pages: re-distributes by BYTE budget, cutting
  // only at a routing-key boundary (keys sharing a routing key must share
  // a leaf); reuses the kSplit intent + InsertInternal ascent. `payload`
  // is the staged heap payload of the pending insert (inline bytes or
  // packed pointer).
  sim::Task<Status> SplitVarLeafAndUnlock(Locked locked,
                                          std::vector<uint8_t> buf,
                                          const Slice& key,
                                          const uint8_t* payload,
                                          uint32_t payload_len, uint16_t vlen,
                                          bool outline, OpStats* stats);
  // Resolves slot `i` of a validated leaf view to value bytes (inline copy
  // or one vlog READ). Corruption = the extent was concurrently relocated;
  // the caller re-reads the leaf.
  sim::Task<Status> ResolveVarValue(const NodeView& view, uint32_t i,
                                    const Slice& key, std::string* value,
                                    OpStats* stats);
  // Concurrent out-of-line resolution step for MultiGetVar/ScanVar.
  sim::Task<void> ResolveVarInto(uint64_t ptr, const std::string* key,
                                 uint16_t vlen, VarGetResult* out,
                                 OpStats* stats, sim::CountdownLatch* latch);
  // MultiInsertVar group apply (one lock, whole-node write-back).
  sim::Task<void> ApplyVarInsertGroup(
      rdma::GlobalAddress addr, std::vector<size_t> idxs,
      const std::vector<std::pair<std::string, std::string>>* kvs,
      const std::vector<uint64_t>* vptrs, std::vector<uint8_t>* defer,
      std::vector<uint64_t>* retired, OpStats* stats,
      sim::CountdownLatch* latch);
  // GC of one claimed victim segment on `ms`.
  sim::Task<Status> GcVictimSegment(uint16_t ms, uint64_t base, uint32_t cls,
                                    uint32_t used, uint64_t* relocated,
                                    OpStats* stats);
  // Bounded key -> (vlog ptr, vlen) map behind the swizzle fast path.
  void RememberVptr(const std::string& key, uint64_t ptr, uint16_t vlen);
  void ForgetVptr(const std::string& key);

  // --- leaf-hint sidecar (cache/leaf_hints.cc) ---

  // Consults the local hint mirror (refetching the MS tables when never
  // fetched or gone stale); true + *out when a hinted leaf address is
  // available for `key`. The caller MUST validate the leaf it reads there
  // and fall back to traversal on failure — hints are advisory.
  sim::Task<bool> HintLeafAddr(Key key, rdma::GlobalAddress* out,
                               OpStats* stats);
  // Refetches every MS's hint table whose generation moved.
  sim::Task<void> HintRefresh(OpStats* stats);
  // Publishes (lo fence -> leaf) to the leaf's home MS. Called after a
  // structural commit (split sibling, migration copy, bulk-load seed).
  sim::Task<void> HintPublish(rdma::GlobalAddress leaf, Key lo,
                              OpStats* stats);
  // Removes every hint entry pointing at `leaf` on its home MS. MUST
  // complete before the leaf's kRpcFreeNode (DMSan rule V6). Idempotent.
  sim::Task<void> HintInvalidate(rdma::GlobalAddress leaf, OpStats* stats);
  // A hinted leaf failed validation: drop the mirror entry covering `key`
  // so restart loops do not re-serve it.
  void NoteHintStale(Key key);
  // A hinted leaf was valid but the key had split off to its right.
  void NoteHintChase();

  ShermanSystem* system_;
  int cs_id_;
  HoclClient hocl_;
  CsAllocator allocator_;
  IndexCache cache_;
  recover::IntentTable intents_;
  std::unique_ptr<recover::Recoverer> recoverer_;
  ReclaimStats reclaim_stats_;
  uint64_t delete_ops_ = 0;  // clock for the merge-abort backoff
  std::map<uint64_t, uint64_t> merge_backoff_;  // leaf addr -> retry deadline

  // Varlen mode only: the value-log client and the pointer-swizzle cache
  // (key -> last observed out-of-line pointer + value length; speculative,
  // validated against the leaf on every use).
  std::unique_ptr<vlog::VlogClient> vlog_;
  struct VptrHint {
    uint64_t ptr = 0;
    uint16_t vlen = 0;
  };
  std::map<std::string, VptrHint> vptr_cache_;

  // Leaf-hint mirror (enable_leaf_hints mode): merged lo fence -> leaf
  // address across every MS table, plus the per-MS generation observed at
  // the last fetch. hint_staleness_ counts stale/chased hints since then.
  std::map<Key, rdma::GlobalAddress> hint_mirror_;
  std::vector<uint64_t> hint_gen_;
  bool hint_fetched_ = false;
  uint32_t hint_staleness_ = 0;
  HintStats hint_stats_;

  bool root_known_ = false;
  rdma::GlobalAddress root_addr_;
  uint8_t root_level_ = 0;
};

// The whole deployment: fabric + per-MS chunk managers + per-CS clients.
class ShermanSystem {
 public:
  ShermanSystem(rdma::FabricConfig fabric_config, TreeOptions tree_options);
  ~ShermanSystem();

  ShermanSystem(const ShermanSystem&) = delete;
  ShermanSystem& operator=(const ShermanSystem&) = delete;

  rdma::Fabric& fabric() { return fabric_; }
  sim::Simulator& simulator() { return fabric_.simulator(); }
  const TreeOptions& options() const { return options_; }

  // Unified metrics registry (obs/metrics.h). The constructor registers
  // read-side collectors for every component (QPs, NICs, HOCL, index
  // caches, chunk managers, reclamation epoch, recoverers), so
  // registry().Snapshot() is one consistent view of the whole deployment.
  obs::Registry& registry() { return registry_; }

  // Per-op tracer (obs/trace.h). Always constructed; whether spans are
  // recorded follows TraceOptions/SHERMAN_TRACE, and whether call sites
  // exist at all follows the SHERMAN_TRACING build option.
  obs::Tracer& tracer() { return *tracer_; }

  TreeClient& client(int cs_id) { return *clients_[cs_id]; }
  int num_clients() const { return static_cast<int>(clients_.size()); }
  ChunkManager& chunk_manager(int ms_id) { return *chunks_[ms_id]; }
  int num_chunk_managers() const { return static_cast<int>(chunks_.size()); }
  // Leaf-hint directory of `ms_id`, or null when enable_leaf_hints is off.
  LeafHintDirectory* hint_directory(int ms_id) {
    return ms_id < static_cast<int>(hints_.size()) ? hints_[ms_id].get()
                                                   : nullptr;
  }

  // Fabric-wide reclamation epoch: every index operation pins it for its
  // duration; freed nodes recycle only once every operation pinned at or
  // before the free has retired.
  ReclaimEpoch& reclaim_epoch() { return reclaim_; }

  // DMSan shadow-state checker (sanitizer/dmsan.h). Non-null only when the
  // sanitizer is switched on (SHERMAN_DMSAN env var or -DSHERMAN_DMSAN
  // build default); a pure observer of the fabric, so behavior with it on
  // is simulation-identical to behavior with it off.
  dmsan::Checker* dmsan_checker() { return dmsan_.get(); }

  // Sum over all memory servers of chunk bytes handed out — the footprint
  // metric bench_churn watches for a plateau (node recycling keeps it
  // flat; chunks are never returned once split into nodes).
  uint64_t TotalAllocatedBytes() const {
    uint64_t total = 0;
    for (const auto& c : chunks_) total += c->allocated_bytes();
    return total;
  }

  // Builds the tree directly in MS memory (no simulated traffic) from
  // sorted, unique-key pairs; leaves are `fill` full. Installs the root
  // pointer. Call once, before running clients. In varlen mode only an
  // EMPTY bulk load is allowed (one empty slotted leaf as the root);
  // string records go through BulkLoadVar or client inserts.
  void BulkLoad(const std::vector<std::pair<Key, uint64_t>>& kvs, double fill);

  // Varlen bulk load from sorted, unique string pairs. Values must fit
  // inline (<= inline_threshold): the value log is client-owned state and
  // cannot be staged offline; longer values load through InsertVar.
  // Leaves are filled to ~`fill` of their byte budget, never splitting a
  // routing-key group across leaves.
  void BulkLoadVar(const std::vector<std::pair<std::string, std::string>>& kvs,
                   double fill);

  // Elastic scale-out: brings one more memory server online (QPs from every
  // CS, chunk manager installed) and returns its id. The new MS serves
  // allocations immediately; key ranges move to it only via explicit
  // migration (migrate::Migrator).
  int AddMemoryServer();

  // --- test/debug helpers (direct memory, not simulated) ---
  rdma::GlobalAddress DebugRootAddr() const;
  uint32_t DebugHeight() const;
  // All live entries in key order, by walking the leaf sibling chain.
  std::vector<std::pair<Key, uint64_t>> DebugScanLeaves() const;
  // Varlen edition: full string keys -> value bytes (out-of-line values
  // are materialized by reading MS memory directly).
  std::vector<std::pair<std::string, std::string>> DebugScanLeavesVar() const;
  // Length of the live leaf chain — the node-granular footprint metric
  // (chunk accounting hides node-level leaks; without reclamation the
  // chain grows with every delete-churn generation).
  size_t DebugCountLeaves() const;
  // Structural invariant checks (fence continuity, sorted internals, level
  // consistency). Aborts on violation.
  void DebugCheckInvariants() const;

 private:
  friend class TreeClient;

  rdma::GlobalAddress AllocBulk(uint32_t size);
  // Builds the internal levels bottom-up over `children` ((addr, lo) pairs
  // in key order) and returns the root address. Shared by BulkLoad and
  // BulkLoadVar.
  rdma::GlobalAddress BuildUpperLevels(
      std::vector<std::pair<rdma::GlobalAddress, Key>> children, double fill);
  void RegisterCollectors();

  TreeOptions options_;
  rdma::Fabric fabric_;
  obs::Registry registry_;
  std::unique_ptr<obs::Tracer> tracer_;
  ReclaimEpoch reclaim_;  // before chunks_: managers hold a pointer to it
  // Before chunks_ and clients_: both feed shadow events into the checker
  // and the Qp hooks find it through the simulator registry; it must
  // outlive everything that can post work requests.
  std::unique_ptr<dmsan::Checker> dmsan_;
  std::vector<std::unique_ptr<ChunkManager>> chunks_;
  // Per-MS leaf-hint directories (empty when enable_leaf_hints is off).
  std::vector<std::unique_ptr<LeafHintDirectory>> hints_;
  std::vector<std::unique_ptr<TreeClient>> clients_;

  // Bulk-load cursors: nodes are spread round-robin over MSs (§4.2), each
  // MS filling 8 MB chunks obtained from its ChunkManager.
  int bulk_next_ms_ = 0;
  std::vector<rdma::GlobalAddress> bulk_chunk_;
  std::vector<uint64_t> bulk_used_;
};

}  // namespace sherman

#endif  // SHERMAN_CORE_BTREE_H_
