// Bulk loading and offline verification for ShermanSystem. These write MS
// memory directly (no simulated traffic): the paper bulkloads the tree
// before measuring, and tests use the scans to verify invariants.
#include <algorithm>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/btree.h"
#include "util/logging.h"
#include "vlog/vlog.h"

namespace sherman {

rdma::GlobalAddress ShermanSystem::AllocBulk(uint32_t size) {
  const int num_ms = fabric_.num_memory_servers();
  if (static_cast<int>(bulk_chunk_.size()) < num_ms) {
    // First call, or memory servers were added since the last bulk load.
    bulk_chunk_.resize(num_ms, rdma::kNullAddress);
    bulk_used_.resize(num_ms, 0);
  }
  // Spread nodes round-robin across memory servers (§4.2: "Sherman spreads
  // B+Tree nodes across a set of memory servers").
  for (int tries = 0; tries < num_ms; tries++) {
    const int ms = bulk_next_ms_;
    bulk_next_ms_ = (bulk_next_ms_ + 1) % num_ms;
    if (bulk_chunk_[ms].is_null() || bulk_used_[ms] + size > kChunkSize) {
      const uint64_t off = chunks_[ms]->AllocChunk();
      if (off == 0) continue;  // this MS is full
      bulk_chunk_[ms] = rdma::GlobalAddress(static_cast<uint16_t>(ms), off);
      bulk_used_[ms] = 0;
    }
    const rdma::GlobalAddress addr = bulk_chunk_[ms].Plus(bulk_used_[ms]);
    bulk_used_[ms] += size;
    return addr;
  }
  SHERMAN_CHECK_MSG(false, "bulk load exhausted disaggregated memory");
  return rdma::kNullAddress;
}

rdma::GlobalAddress ShermanSystem::BuildUpperLevels(
    std::vector<std::pair<rdma::GlobalAddress, Key>> children, double fill) {
  const TreeShape& shape = options_.shape;
  const bool checksum_mode =
      options_.consistency == TreeOptions::Consistency::kChecksum;
  const uint32_t per_internal = std::max<uint32_t>(
      2, std::min<uint32_t>(
             shape.internal_capacity(),
             static_cast<uint32_t>(shape.internal_capacity() * fill)));
  uint8_t level = 1;
  while (children.size() > 1) {
    // Each node takes one leftmost child plus up to per_internal keyed
    // children.
    const size_t group = static_cast<size_t>(per_internal) + 1;
    const size_t num_nodes = (children.size() + group - 1) / group;
    std::vector<rdma::GlobalAddress> naddrs(num_nodes);
    for (size_t i = 0; i < num_nodes; i++) {
      naddrs[i] = AllocBulk(shape.node_size);
    }
    std::vector<std::pair<rdma::GlobalAddress, Key>> next;
    next.reserve(num_nodes);
    for (size_t i = 0; i < num_nodes; i++) {
      const size_t begin = i * group;
      const size_t end = std::min(children.size(), begin + group);
      const Key lo = (i == 0) ? 0 : children[begin].second;
      const Key hi = (i + 1 == num_nodes) ? kMaxKey : children[end].second;
      const rdma::GlobalAddress sibling =
          (i + 1 == num_nodes) ? rdma::kNullAddress : naddrs[i + 1];

      NodeView view(fabric_.HostRaw(naddrs[i]), &shape);
      view.InitInternal(level, lo, hi, sibling,
                        /*leftmost=*/children[begin].first);
      uint16_t count = 0;
      for (size_t j = begin + 1; j < end; j++) {
        view.SetInternalEntry(count, children[j].second, children[j].first);
        count++;
      }
      view.set_count(count);
      if (checksum_mode) view.UpdateChecksum();
      if (dmsan_ != nullptr) dmsan_->PublishNode(naddrs[i], level);
      next.emplace_back(naddrs[i], lo);
    }
    children = std::move(next);
    level++;
  }
  return children[0].first;
}

void ShermanSystem::BulkLoad(const std::vector<std::pair<Key, uint64_t>>& kvs,
                             double fill) {
  SHERMAN_CHECK(fill > 0 && fill <= 1.0);
  const TreeShape& shape = options_.shape;
  const bool sorted_mode = !options_.two_level_versions;
  const bool checksum_mode =
      options_.consistency == TreeOptions::Consistency::kChecksum;
  // Varlen leaves are slotted pages; fixed 16-byte records cannot be
  // staged into them. An empty load (the root bootstrap) is fine.
  SHERMAN_CHECK_MSG(!shape.varlen || kvs.empty(),
                    "varlen trees bulk load via BulkLoadVar");

  for (size_t i = 0; i < kvs.size(); i++) {
    SHERMAN_CHECK(kvs[i].first != kNullKey && kvs[i].first != kMaxKey);
    if (i > 0) SHERMAN_CHECK_MSG(kvs[i - 1].first < kvs[i].first,
                                 "bulk load keys must be sorted and unique");
  }

  // --- Leaves ---
  const uint32_t per_leaf = std::max<uint32_t>(
      1, std::min<uint32_t>(shape.leaf_capacity(),
                            static_cast<uint32_t>(shape.leaf_capacity() * fill)));
  const size_t num_leaves =
      kvs.empty() ? 1 : (kvs.size() + per_leaf - 1) / per_leaf;

  std::vector<std::pair<rdma::GlobalAddress, Key>> level_nodes;
  level_nodes.reserve(num_leaves);
  std::vector<rdma::GlobalAddress> addrs(num_leaves);
  for (size_t i = 0; i < num_leaves; i++) addrs[i] = AllocBulk(shape.node_size);

  for (size_t i = 0; i < num_leaves; i++) {
    const size_t begin = i * per_leaf;
    const size_t end = std::min(kvs.size(), begin + per_leaf);
    const Key lo = (i == 0) ? 0 : kvs[begin].first;
    const Key hi = (i + 1 == num_leaves) ? kMaxKey : kvs[end].first;
    const rdma::GlobalAddress sibling =
        (i + 1 == num_leaves) ? rdma::kNullAddress : addrs[i + 1];

    NodeView view(fabric_.HostRaw(addrs[i]), &shape);
    view.InitLeaf(lo, hi, sibling);
    for (size_t j = begin; j < end; j++) {
      view.SetLeafEntryRaw(static_cast<uint32_t>(j - begin), kvs[j].first,
                           kvs[j].second);
    }
    if (sorted_mode) view.set_count(static_cast<uint16_t>(end - begin));
    if (checksum_mode) view.UpdateChecksum();
    if (dmsan_ != nullptr) dmsan_->PublishNode(addrs[i], /*level=*/0);
    if (!hints_.empty()) hints_[addrs[i].node]->SeedDirect(lo, addrs[i]);
    level_nodes.emplace_back(addrs[i], lo);
  }

  const rdma::GlobalAddress root = BuildUpperLevels(std::move(level_nodes),
                                                    fill);

  // --- Publish the root pointer in MS 0's meta region ---
  const uint64_t packed = root.ToU64();
  std::memcpy(fabric_.ms(0).host().raw(kRootPointerOffset), &packed, 8);
}

void ShermanSystem::BulkLoadVar(
    const std::vector<std::pair<std::string, std::string>>& kvs, double fill) {
  SHERMAN_CHECK(fill > 0 && fill <= 1.0);
  const TreeShape& shape = options_.shape;
  SHERMAN_CHECK_MSG(shape.varlen, "BulkLoadVar on a fixed-size tree");
  const bool checksum_mode =
      options_.consistency == TreeOptions::Consistency::kChecksum;

  std::vector<VarEntry> entries;
  entries.reserve(kvs.size());
  for (size_t i = 0; i < kvs.size(); i++) {
    const std::string& k = kvs[i].first;
    const std::string& v = kvs[i].second;
    SHERMAN_CHECK_MSG(!k.empty() && k.size() <= shape.max_key_len,
                      "bulk key length out of range");
    const Key rk = RoutingKeyFor(k);
    SHERMAN_CHECK_MSG(rk != kNullKey && rk != kMaxKey,
                      "bulk key routes to a reserved sentinel");
    if (i > 0) SHERMAN_CHECK_MSG(kvs[i - 1].first < k,
                                 "bulk load keys must be sorted and unique");
    // The offline loader has no value-log appender; longer values go
    // through InsertVar on a running client.
    SHERMAN_CHECK_MSG(v.size() <= options_.inline_threshold,
                      "BulkLoadVar values must be inline-sized");
    VarEntry e;
    e.key = k;
    e.payload.assign(v.begin(), v.end());
    e.vlen = static_cast<uint16_t>(v.size());
    e.outline = false;
    entries.push_back(std::move(e));
  }

  // Greedy byte-budget packing: leaves close at ~`fill` of the usable
  // byte budget, and a routing-key group (keys sharing the first 8 bytes)
  // never splits across leaves — splits can only cut at routing
  // boundaries, so neither can the loader.
  const uint64_t budget = shape.var_usable_bytes();
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(static_cast<double>(budget) * fill));
  std::vector<std::vector<VarEntry>> leaf_groups;
  std::vector<VarEntry> cur;
  size_t i = 0;
  while (i < entries.size()) {
    size_t j = i;
    const Key rk = RoutingKeyFor(entries[i].key);
    while (j < entries.size() && RoutingKeyFor(entries[j].key) == rk) j++;
    std::vector<VarEntry> cand = cur;
    cand.insert(cand.end(), entries.begin() + i, entries.begin() + j);
    const uint64_t need = VarBytesNeeded(cand, VarCommonPrefix(cand));
    if (!cur.empty() && need > target) {
      leaf_groups.push_back(std::move(cur));
      cur.clear();
      continue;  // retry this routing group against a fresh leaf
    }
    SHERMAN_CHECK_MSG(need <= budget,
                      "routing-key group exceeds leaf capacity");
    cur = std::move(cand);
    i = j;
  }
  if (!cur.empty() || leaf_groups.empty()) leaf_groups.push_back(std::move(cur));

  const size_t num_leaves = leaf_groups.size();
  std::vector<rdma::GlobalAddress> addrs(num_leaves);
  for (size_t l = 0; l < num_leaves; l++) addrs[l] = AllocBulk(shape.node_size);

  std::vector<std::pair<rdma::GlobalAddress, Key>> level_nodes;
  level_nodes.reserve(num_leaves);
  for (size_t l = 0; l < num_leaves; l++) {
    const Key lo = (l == 0) ? 0 : RoutingKeyFor(leaf_groups[l].front().key);
    const Key hi = (l + 1 == num_leaves)
                       ? kMaxKey
                       : RoutingKeyFor(leaf_groups[l + 1].front().key);
    const rdma::GlobalAddress sibling =
        (l + 1 == num_leaves) ? rdma::kNullAddress : addrs[l + 1];
    NodeView view(fabric_.HostRaw(addrs[l]), &shape);
    view.InitLeaf(lo, hi, sibling);
    SHERMAN_CHECK(BuildVarLeaf(&view, leaf_groups[l]));
    if (checksum_mode) view.UpdateChecksum();
    if (dmsan_ != nullptr) dmsan_->PublishNode(addrs[l], /*level=*/0);
    if (!hints_.empty()) hints_[addrs[l].node]->SeedDirect(lo, addrs[l]);
    level_nodes.emplace_back(addrs[l], lo);
  }

  const rdma::GlobalAddress root = BuildUpperLevels(std::move(level_nodes),
                                                    fill);
  const uint64_t packed = root.ToU64();
  std::memcpy(fabric_.ms(0).host().raw(kRootPointerOffset), &packed, 8);
}

std::vector<std::pair<Key, uint64_t>> ShermanSystem::DebugScanLeaves() const {
  auto* self = const_cast<ShermanSystem*>(this);
  const TreeShape& shape = options_.shape;
  SHERMAN_CHECK_MSG(!shape.varlen, "varlen trees scan via DebugScanLeavesVar");

  // Descend leftmost pointers to the leftmost leaf.
  rdma::GlobalAddress addr = DebugRootAddr();
  while (true) {
    NodeView view(self->fabric_.HostRaw(addr), &shape);
    if (view.is_leaf()) break;
    addr = view.leftmost_child();
  }

  std::vector<std::pair<Key, uint64_t>> out;
  while (!addr.is_null()) {
    NodeView view(self->fabric_.HostRaw(addr), &shape);
    SHERMAN_CHECK(view.is_leaf());
    std::vector<std::pair<Key, uint64_t>> leaf_entries;
    if (options_.two_level_versions) {
      for (uint32_t i = 0; i < shape.leaf_capacity(); i++) {
        const Key k = view.LeafKey(i);
        if (k != kNullKey) leaf_entries.emplace_back(k, view.LeafValue(i));
      }
      std::sort(leaf_entries.begin(), leaf_entries.end());
    } else {
      for (uint32_t i = 0; i < view.count(); i++) {
        leaf_entries.emplace_back(view.LeafKey(i), view.LeafValue(i));
      }
    }
    for (const auto& kv : leaf_entries) out.push_back(kv);
    addr = view.sibling();
  }
  return out;
}

std::vector<std::pair<std::string, std::string>>
ShermanSystem::DebugScanLeavesVar() const {
  auto* self = const_cast<ShermanSystem*>(this);
  const TreeShape& shape = options_.shape;
  SHERMAN_CHECK_MSG(shape.varlen, "DebugScanLeavesVar on a fixed-size tree");

  rdma::GlobalAddress addr = DebugRootAddr();
  while (true) {
    NodeView view(self->fabric_.HostRaw(addr), &shape);
    if (view.is_leaf()) break;
    addr = view.leftmost_child();
  }

  std::vector<std::pair<std::string, std::string>> out;
  while (!addr.is_null()) {
    NodeView view(self->fabric_.HostRaw(addr), &shape);
    SHERMAN_CHECK(view.is_leaf());
    for (uint32_t i = 0; i < view.count(); i++) {
      std::string k = view.VarFullKey(i);
      std::string v;
      if (view.VarOutline(i)) {
        // Materialize out-of-line values by reading the extent directly.
        const uint64_t ptr = view.VarVlogPtr(i);
        const uint8_t* rec = self->fabric_.HostRaw(vlog::VlogPtr::Addr(ptr));
        uint16_t klen = 0;
        uint16_t vlen = 0;
        std::memcpy(&klen, rec, 2);
        std::memcpy(&vlen, rec + 2, 2);
        SHERMAN_CHECK_MSG(klen == k.size() &&
                              std::memcmp(rec + vlog::kRecordHeader, k.data(),
                                          klen) == 0,
                          "leaf slot points at a foreign vlog record");
        SHERMAN_CHECK(vlen == view.VarVlen(i));
        v.assign(reinterpret_cast<const char*>(rec) + vlog::kRecordHeader +
                     klen,
                 vlen);
      } else {
        const Slice iv = view.VarInlineValue(i);
        v.assign(iv.data(), iv.size());
      }
      out.emplace_back(std::move(k), std::move(v));
    }
    addr = view.sibling();
  }
  return out;
}

size_t ShermanSystem::DebugCountLeaves() const {
  auto* self = const_cast<ShermanSystem*>(this);
  const TreeShape& shape = options_.shape;
  rdma::GlobalAddress addr = DebugRootAddr();
  while (true) {
    NodeView view(self->fabric_.HostRaw(addr), &shape);
    if (view.is_leaf()) break;
    addr = view.leftmost_child();
  }
  size_t n = 0;
  while (!addr.is_null()) {
    NodeView view(self->fabric_.HostRaw(addr), &shape);
    n++;
    addr = view.sibling();
  }
  return n;
}

void ShermanSystem::DebugCheckInvariants() const {
  auto* self = const_cast<ShermanSystem*>(this);
  const TreeShape& shape = options_.shape;
  const rdma::GlobalAddress root = DebugRootAddr();
  NodeView root_view(self->fabric_.HostRaw(root), &shape);
  const uint8_t root_level = root_view.level();
  SHERMAN_CHECK(root_view.lo_fence() == 0);
  SHERMAN_CHECK(root_view.hi_fence() == kMaxKey);

  // Walk every level left-to-right; verify fences tile the key space, keys
  // stay inside fences and sorted, and levels/flags are coherent.
  rdma::GlobalAddress level_start = root;
  for (int level = root_level; level >= 0; level--) {
    rdma::GlobalAddress addr = level_start;
    Key expected_lo = 0;
    rdma::GlobalAddress next_level_start;
    while (!addr.is_null()) {
      NodeView view(self->fabric_.HostRaw(addr), &shape);
      SHERMAN_CHECK_MSG(view.level() == level, "level mismatch at %s",
                        addr.ToString().c_str());
      SHERMAN_CHECK(view.is_leaf() == (level == 0));
      SHERMAN_CHECK(!view.is_free());
      SHERMAN_CHECK_MSG(view.lo_fence() == expected_lo,
                        "fence gap at level %d: lo=%llu expected=%llu", level,
                        (unsigned long long)view.lo_fence(),
                        (unsigned long long)expected_lo);
      SHERMAN_CHECK(view.lo_fence() < view.hi_fence());
      SHERMAN_CHECK(view.NodeVersionsMatch());
      if (level == 0) {
        if (shape.varlen) {
          // Slotted leaf: byte keys strictly sorted, every ROUTING key in
          // fence, heap accounting within budget.
          std::string prev;
          for (uint32_t i = 0; i < view.count(); i++) {
            const std::string k = view.VarFullKey(i);
            SHERMAN_CHECK(!k.empty() && k.size() <= shape.max_key_len);
            SHERMAN_CHECK(view.InFence(RoutingKeyFor(k)));
            SHERMAN_CHECK(i == 0 || k > prev);
            prev = k;
          }
          SHERMAN_CHECK(view.VarLiveBytes() <= shape.var_usable_bytes());
        } else if (options_.two_level_versions) {
          for (uint32_t i = 0; i < shape.leaf_capacity(); i++) {
            const Key k = view.LeafKey(i);
            if (k == kNullKey) continue;
            SHERMAN_CHECK(view.InFence(k));
            SHERMAN_CHECK(view.LeafEntryVersionsMatch(i));
          }
        } else {
          Key prev = 0;
          for (uint32_t i = 0; i < view.count(); i++) {
            const Key k = view.LeafKey(i);
            SHERMAN_CHECK(view.InFence(k));
            SHERMAN_CHECK(i == 0 || k > prev);
            prev = k;
          }
        }
      } else {
        if (next_level_start.is_null()) {
          next_level_start = view.leftmost_child();
        }
        Key prev = view.lo_fence();
        for (uint32_t i = 0; i < view.count(); i++) {
          const Key k = view.InternalKey(i);
          SHERMAN_CHECK(k > prev || (i == 0 && k >= prev));
          SHERMAN_CHECK(k >= view.lo_fence() && k < view.hi_fence());
          prev = k;
          // Each child's lo fence equals its separator.
          const rdma::GlobalAddress child = view.InternalChild(i);
          NodeView cv(self->fabric_.HostRaw(child), &shape);
          SHERMAN_CHECK_MSG(cv.lo_fence() == k,
                            "child lo %llu != separator %llu",
                            (unsigned long long)cv.lo_fence(),
                            (unsigned long long)k);
          SHERMAN_CHECK(cv.level() == level - 1);
        }
        // Leftmost child starts at this node's lo fence.
        NodeView lm(self->fabric_.HostRaw(view.leftmost_child()), &shape);
        SHERMAN_CHECK(lm.lo_fence() == view.lo_fence());
        SHERMAN_CHECK(lm.level() == level - 1);
      }
      expected_lo = view.hi_fence();
      addr = view.sibling();
    }
    SHERMAN_CHECK_MSG(expected_lo == kMaxKey,
                      "level %d does not tile the key space", level);
    if (level > 0) level_start = next_level_start;
  }
}

}  // namespace sherman
