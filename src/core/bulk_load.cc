// Bulk loading and offline verification for ShermanSystem. These write MS
// memory directly (no simulated traffic): the paper bulkloads the tree
// before measuring, and tests use the scans to verify invariants.
#include <algorithm>
#include <cstring>

#include "core/btree.h"
#include "util/logging.h"

namespace sherman {

rdma::GlobalAddress ShermanSystem::AllocBulk(uint32_t size) {
  const int num_ms = fabric_.num_memory_servers();
  if (static_cast<int>(bulk_chunk_.size()) < num_ms) {
    // First call, or memory servers were added since the last bulk load.
    bulk_chunk_.resize(num_ms, rdma::kNullAddress);
    bulk_used_.resize(num_ms, 0);
  }
  // Spread nodes round-robin across memory servers (§4.2: "Sherman spreads
  // B+Tree nodes across a set of memory servers").
  for (int tries = 0; tries < num_ms; tries++) {
    const int ms = bulk_next_ms_;
    bulk_next_ms_ = (bulk_next_ms_ + 1) % num_ms;
    if (bulk_chunk_[ms].is_null() || bulk_used_[ms] + size > kChunkSize) {
      const uint64_t off = chunks_[ms]->AllocChunk();
      if (off == 0) continue;  // this MS is full
      bulk_chunk_[ms] = rdma::GlobalAddress(static_cast<uint16_t>(ms), off);
      bulk_used_[ms] = 0;
    }
    const rdma::GlobalAddress addr = bulk_chunk_[ms].Plus(bulk_used_[ms]);
    bulk_used_[ms] += size;
    return addr;
  }
  SHERMAN_CHECK_MSG(false, "bulk load exhausted disaggregated memory");
  return rdma::kNullAddress;
}

void ShermanSystem::BulkLoad(const std::vector<std::pair<Key, uint64_t>>& kvs,
                             double fill) {
  SHERMAN_CHECK(fill > 0 && fill <= 1.0);
  const TreeShape& shape = options_.shape;
  const bool sorted_mode = !options_.two_level_versions;
  const bool checksum_mode =
      options_.consistency == TreeOptions::Consistency::kChecksum;

  for (size_t i = 0; i < kvs.size(); i++) {
    SHERMAN_CHECK(kvs[i].first != kNullKey && kvs[i].first != kMaxKey);
    if (i > 0) SHERMAN_CHECK_MSG(kvs[i - 1].first < kvs[i].first,
                                 "bulk load keys must be sorted and unique");
  }

  struct ChildRec {
    rdma::GlobalAddress addr;
    Key lo;
  };

  // --- Leaves ---
  const uint32_t per_leaf = std::max<uint32_t>(
      1, std::min<uint32_t>(shape.leaf_capacity(),
                            static_cast<uint32_t>(shape.leaf_capacity() * fill)));
  const size_t num_leaves =
      kvs.empty() ? 1 : (kvs.size() + per_leaf - 1) / per_leaf;

  std::vector<ChildRec> level_nodes;
  level_nodes.reserve(num_leaves);
  std::vector<rdma::GlobalAddress> addrs(num_leaves);
  for (size_t i = 0; i < num_leaves; i++) addrs[i] = AllocBulk(shape.node_size);

  for (size_t i = 0; i < num_leaves; i++) {
    const size_t begin = i * per_leaf;
    const size_t end = std::min(kvs.size(), begin + per_leaf);
    const Key lo = (i == 0) ? 0 : kvs[begin].first;
    const Key hi = (i + 1 == num_leaves) ? kMaxKey : kvs[end].first;
    const rdma::GlobalAddress sibling =
        (i + 1 == num_leaves) ? rdma::kNullAddress : addrs[i + 1];

    NodeView view(fabric_.HostRaw(addrs[i]), &shape);
    view.InitLeaf(lo, hi, sibling);
    for (size_t j = begin; j < end; j++) {
      view.SetLeafEntryRaw(static_cast<uint32_t>(j - begin), kvs[j].first,
                           kvs[j].second);
    }
    if (sorted_mode) view.set_count(static_cast<uint16_t>(end - begin));
    if (checksum_mode) view.UpdateChecksum();
    if (dmsan_ != nullptr) dmsan_->PublishNode(addrs[i], /*level=*/0);
    level_nodes.push_back(ChildRec{addrs[i], lo});
  }

  // --- Internal levels, bottom-up ---
  const uint32_t per_internal = std::max<uint32_t>(
      2, std::min<uint32_t>(
             shape.internal_capacity(),
             static_cast<uint32_t>(shape.internal_capacity() * fill)));
  uint8_t level = 1;
  while (level_nodes.size() > 1) {
    // Each node takes one leftmost child plus up to per_internal keyed
    // children.
    const size_t group = static_cast<size_t>(per_internal) + 1;
    const size_t num_nodes = (level_nodes.size() + group - 1) / group;
    std::vector<rdma::GlobalAddress> naddrs(num_nodes);
    for (size_t i = 0; i < num_nodes; i++) {
      naddrs[i] = AllocBulk(shape.node_size);
    }
    std::vector<ChildRec> next;
    next.reserve(num_nodes);
    for (size_t i = 0; i < num_nodes; i++) {
      const size_t begin = i * group;
      const size_t end = std::min(level_nodes.size(), begin + group);
      const Key lo = (i == 0) ? 0 : level_nodes[begin].lo;
      const Key hi =
          (i + 1 == num_nodes) ? kMaxKey : level_nodes[end].lo;
      const rdma::GlobalAddress sibling =
          (i + 1 == num_nodes) ? rdma::kNullAddress : naddrs[i + 1];

      NodeView view(fabric_.HostRaw(naddrs[i]), &shape);
      view.InitInternal(level, lo, hi, sibling,
                        /*leftmost=*/level_nodes[begin].addr);
      uint16_t count = 0;
      for (size_t j = begin + 1; j < end; j++) {
        view.SetInternalEntry(count, level_nodes[j].lo, level_nodes[j].addr);
        count++;
      }
      view.set_count(count);
      if (checksum_mode) view.UpdateChecksum();
      if (dmsan_ != nullptr) dmsan_->PublishNode(naddrs[i], level);
      next.push_back(ChildRec{naddrs[i], lo});
    }
    level_nodes = std::move(next);
    level++;
  }

  // --- Publish the root pointer in MS 0's meta region ---
  const uint64_t packed = level_nodes[0].addr.ToU64();
  std::memcpy(fabric_.ms(0).host().raw(kRootPointerOffset), &packed, 8);
}

std::vector<std::pair<Key, uint64_t>> ShermanSystem::DebugScanLeaves() const {
  auto* self = const_cast<ShermanSystem*>(this);
  const TreeShape& shape = options_.shape;

  // Descend leftmost pointers to the leftmost leaf.
  rdma::GlobalAddress addr = DebugRootAddr();
  while (true) {
    NodeView view(self->fabric_.HostRaw(addr), &shape);
    if (view.is_leaf()) break;
    addr = view.leftmost_child();
  }

  std::vector<std::pair<Key, uint64_t>> out;
  while (!addr.is_null()) {
    NodeView view(self->fabric_.HostRaw(addr), &shape);
    SHERMAN_CHECK(view.is_leaf());
    std::vector<std::pair<Key, uint64_t>> leaf_entries;
    if (options_.two_level_versions) {
      for (uint32_t i = 0; i < shape.leaf_capacity(); i++) {
        const Key k = view.LeafKey(i);
        if (k != kNullKey) leaf_entries.emplace_back(k, view.LeafValue(i));
      }
      std::sort(leaf_entries.begin(), leaf_entries.end());
    } else {
      for (uint32_t i = 0; i < view.count(); i++) {
        leaf_entries.emplace_back(view.LeafKey(i), view.LeafValue(i));
      }
    }
    for (const auto& kv : leaf_entries) out.push_back(kv);
    addr = view.sibling();
  }
  return out;
}

size_t ShermanSystem::DebugCountLeaves() const {
  auto* self = const_cast<ShermanSystem*>(this);
  const TreeShape& shape = options_.shape;
  rdma::GlobalAddress addr = DebugRootAddr();
  while (true) {
    NodeView view(self->fabric_.HostRaw(addr), &shape);
    if (view.is_leaf()) break;
    addr = view.leftmost_child();
  }
  size_t n = 0;
  while (!addr.is_null()) {
    NodeView view(self->fabric_.HostRaw(addr), &shape);
    n++;
    addr = view.sibling();
  }
  return n;
}

void ShermanSystem::DebugCheckInvariants() const {
  auto* self = const_cast<ShermanSystem*>(this);
  const TreeShape& shape = options_.shape;
  const rdma::GlobalAddress root = DebugRootAddr();
  NodeView root_view(self->fabric_.HostRaw(root), &shape);
  const uint8_t root_level = root_view.level();
  SHERMAN_CHECK(root_view.lo_fence() == 0);
  SHERMAN_CHECK(root_view.hi_fence() == kMaxKey);

  // Walk every level left-to-right; verify fences tile the key space, keys
  // stay inside fences and sorted, and levels/flags are coherent.
  rdma::GlobalAddress level_start = root;
  for (int level = root_level; level >= 0; level--) {
    rdma::GlobalAddress addr = level_start;
    Key expected_lo = 0;
    rdma::GlobalAddress next_level_start;
    while (!addr.is_null()) {
      NodeView view(self->fabric_.HostRaw(addr), &shape);
      SHERMAN_CHECK_MSG(view.level() == level, "level mismatch at %s",
                        addr.ToString().c_str());
      SHERMAN_CHECK(view.is_leaf() == (level == 0));
      SHERMAN_CHECK(!view.is_free());
      SHERMAN_CHECK_MSG(view.lo_fence() == expected_lo,
                        "fence gap at level %d: lo=%llu expected=%llu", level,
                        (unsigned long long)view.lo_fence(),
                        (unsigned long long)expected_lo);
      SHERMAN_CHECK(view.lo_fence() < view.hi_fence());
      SHERMAN_CHECK(view.NodeVersionsMatch());
      if (level == 0) {
        if (options_.two_level_versions) {
          for (uint32_t i = 0; i < shape.leaf_capacity(); i++) {
            const Key k = view.LeafKey(i);
            if (k == kNullKey) continue;
            SHERMAN_CHECK(view.InFence(k));
            SHERMAN_CHECK(view.LeafEntryVersionsMatch(i));
          }
        } else {
          Key prev = 0;
          for (uint32_t i = 0; i < view.count(); i++) {
            const Key k = view.LeafKey(i);
            SHERMAN_CHECK(view.InFence(k));
            SHERMAN_CHECK(i == 0 || k > prev);
            prev = k;
          }
        }
      } else {
        if (next_level_start.is_null()) {
          next_level_start = view.leftmost_child();
        }
        Key prev = view.lo_fence();
        for (uint32_t i = 0; i < view.count(); i++) {
          const Key k = view.InternalKey(i);
          SHERMAN_CHECK(k > prev || (i == 0 && k >= prev));
          SHERMAN_CHECK(k >= view.lo_fence() && k < view.hi_fence());
          prev = k;
          // Each child's lo fence equals its separator.
          const rdma::GlobalAddress child = view.InternalChild(i);
          NodeView cv(self->fabric_.HostRaw(child), &shape);
          SHERMAN_CHECK_MSG(cv.lo_fence() == k,
                            "child lo %llu != separator %llu",
                            (unsigned long long)cv.lo_fence(),
                            (unsigned long long)k);
          SHERMAN_CHECK(cv.level() == level - 1);
        }
        // Leftmost child starts at this node's lo fence.
        NodeView lm(self->fabric_.HostRaw(view.leftmost_child()), &shape);
        SHERMAN_CHECK(lm.lo_fence() == view.lo_fence());
        SHERMAN_CHECK(lm.level() == level - 1);
      }
      expected_lo = view.hi_fence();
      addr = view.sibling();
    }
    SHERMAN_CHECK_MSG(expected_lo == kMaxKey,
                      "level %d does not tile the key space", level);
    if (level > 0) level_start = next_level_start;
  }
}

}  // namespace sherman
