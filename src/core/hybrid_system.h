// HybridSystem: the whole adaptive hybrid deployment — a ShermanSystem
// (one-sided B-link tree) plus the route/ subsystem (MS-side tree executor,
// per-shard hotness tracking, epoch-based adaptive router) behind one
// facade. Both paths operate on the SAME tree in MS memory, so shard
// re-assignment is a control-plane flip with no data migration.
//
// Usage (see bench/bench_hybrid.cc):
//   HybridOptions opts;                  // tree + router configuration
//   HybridSystem system(fabric_cfg, opts);
//   system.BulkLoad(sorted_kvs, 0.8);    // also sizes the shard universe
//   route::HybridClient& c = system.client(0);
//   sim::Spawn(MyWorkload(&c));          // Insert/Lookup/RangeQuery/Delete
//   system.router().Start();             // begin epoch re-planning
//   system.simulator().RunUntil(...);
//   system.router().Stop();
#ifndef SHERMAN_CORE_HYBRID_SYSTEM_H_
#define SHERMAN_CORE_HYBRID_SYSTEM_H_

#include <memory>
#include <utility>
#include <vector>

#include "combine/rdwc.h"
#include "core/btree.h"
#include "migrate/shard_map.h"
#include "route/hybrid_client.h"
#include "route/router.h"
#include "route/tree_rpc.h"

namespace sherman {

struct HybridOptions {
  TreeOptions tree;
  route::RouterOptions router;
  // Hot-key delegation + read/write combining (src/combine/rdwc.h);
  // rdwc.enable_delegation = false keeps the layer entirely out of the
  // op path (the ablation baseline).
  combine::RdwcOptions rdwc;
};

class HybridSystem {
 public:
  HybridSystem(rdma::FabricConfig fabric_config, HybridOptions options);

  HybridSystem(const HybridSystem&) = delete;
  HybridSystem& operator=(const HybridSystem&) = delete;

  // Bulkloads the tree and sizes the router's shard universe to cover the
  // loaded keys (plus the adjacent odd insert keys the workloads target).
  void BulkLoad(const std::vector<std::pair<Key, uint64_t>>& kvs, double fill);

  // Varlen twin: loads string records and cuts shards over the keys'
  // ROUTING projections (shards partition routing-key space).
  void BulkLoadVar(const std::vector<std::pair<std::string, std::string>>& kvs,
                   double fill);

  route::HybridClient& client(int cs_id) { return *clients_[cs_id]; }
  int num_clients() const { return static_cast<int>(clients_.size()); }

  // Elastic scale-out: brings one more memory server online (QPs, chunk
  // manager, MS-side tree executor) and returns its id. The shard map is
  // untouched — shards move to the new MS only when migrate::Migrator
  // copies their key range and flips their entry.
  int AddMemoryServer();

  ShermanSystem& sherman() { return sherman_; }
  rdma::Fabric& fabric() { return sherman_.fabric(); }
  sim::Simulator& simulator() { return sherman_.simulator(); }
  route::AdaptiveRouter& router() { return *router_; }
  route::HotnessTracker& tracker() { return tracker_; }
  route::TreeRpcService& rpc_service() { return rpc_service_; }
  migrate::ShardMap& shard_map() { return shard_map_; }
  // Null when rdwc.enable_delegation is off.
  combine::RdwcLayer* rdwc() { return rdwc_.get(); }

 private:
  ShermanSystem sherman_;
  route::HotnessTracker tracker_;
  route::TreeRpcService rpc_service_;
  migrate::ShardMap shard_map_;
  std::unique_ptr<route::AdaptiveRouter> router_;
  std::unique_ptr<combine::RdwcLayer> rdwc_;
  std::vector<std::unique_ptr<route::HybridClient>> clients_;
};

}  // namespace sherman

#endif  // SHERMAN_CORE_HYBRID_SYSTEM_H_
