#include "core/hybrid_system.h"

#include "obs/bridge.h"
#include "util/logging.h"

namespace sherman {

HybridSystem::HybridSystem(rdma::FabricConfig fabric_config,
                           HybridOptions options)
    : sherman_(fabric_config, options.tree),
      tracker_(options.router.num_shards),
      rpc_service_(&sherman_),
      shard_map_(options.router.num_shards,
                 sherman_.fabric().num_memory_servers()) {
  router_ = std::make_unique<route::AdaptiveRouter>(
      options.router,
      route::ModelFromFabric(sherman_.fabric().config(),
                             options.tree.enable_cache),
      &tracker_, &sherman_.fabric());
  router_->InstallShardMap(&shard_map_);
  if (options.rdwc.enable_delegation) {
    rdwc_ = std::make_unique<combine::RdwcLayer>(
        &sherman_.simulator(), &tracker_, router_.get(), options.rdwc);
  }
  for (int cs = 0; cs < sherman_.fabric().num_compute_servers(); cs++) {
    clients_.push_back(std::make_unique<route::HybridClient>(
        &sherman_, &rpc_service_, router_.get(), &tracker_, cs));
    if (rdwc_ != nullptr) clients_.back()->SetRdwc(rdwc_.get());
  }

  // route.* / rpc.* / rdwc.*: the hybrid subsystem's counters join the
  // underlying ShermanSystem registry so one Snapshot() covers both
  // layers.
  sherman_.registry().AddCollector([this](obs::MetricsSnapshot* s) {
    obs::AddToSnapshot(s, router_->stats());
    s->AddCounter("rpc.served", rpc_service_.served());
    s->AddCounter("rpc.declined", rpc_service_.declined());
    s->AddCounter("rpc.leaf_merges", rpc_service_.leaf_merges());
    if (rdwc_ != nullptr) {
      const combine::RdwcStats& r = rdwc_->stats();
      s->AddCounter("rdwc.promotions", r.promotions);
      s->AddCounter("rdwc.demotions", r.demotions);
      s->AddCounter("rdwc.windows_opened", r.windows_opened);
      s->AddCounter("rdwc.followers_queued", r.followers_queued);
      s->AddCounter("rdwc.gets_shared", r.gets_shared);
      s->AddCounter("rdwc.puts_combined", r.puts_combined);
      s->AddCounter("rdwc.combined_writes", r.combined_writes);
      s->AddCounter("rdwc.bypass_overflow", r.bypass_overflow);
      s->AddCounter("rdwc.reelections", r.reelections);
      s->AddCounter("rdwc.windows_abandoned", r.windows_abandoned);
      s->AddCounter("rdwc.var_key_mismatch", r.var_key_mismatch);
    }
  });
}

void HybridSystem::BulkLoad(const std::vector<std::pair<Key, uint64_t>>& kvs,
                            double fill) {
  sherman_.BulkLoad(kvs, fill);
  const int n = router_->num_shards();
  if (static_cast<int>(kvs.size()) >= n && !kvs.empty()) {
    // DEX-style logical partitioning: cut the *loaded* keys into
    // equal-population shards. Equal-width cuts over the raw universe
    // degenerate when the loaded keys are sparse in it (e.g. multi-tenant
    // key bases), collapsing whole tenants into single shards.
    std::vector<Key> cuts;
    cuts.reserve(n - 1);
    for (int s = 1; s < n; s++) {
      cuts.push_back(kvs[kvs.size() * s / n].first);
    }
    router_->SetBoundaries(std::move(cuts));
  } else if (router_->options().universe_hi == 0 && !kvs.empty()) {
    // Cover the loaded keys and the odd insert keys between/after them.
    router_->SetUniverse(std::max<Key>(1, kvs.front().first),
                         kvs.back().first + 2);
  }
  router_->SetTreeHeight(static_cast<double>(sherman_.DebugHeight()));
}

void HybridSystem::BulkLoadVar(
    const std::vector<std::pair<std::string, std::string>>& kvs, double fill) {
  sherman_.BulkLoadVar(kvs, fill);
  const int n = router_->num_shards();
  if (static_cast<int>(kvs.size()) >= n && !kvs.empty()) {
    // Shards partition the ROUTING-key space (see BulkLoad): cut the
    // loaded keys' routing projections into equal-population shards.
    std::vector<Key> cuts;
    cuts.reserve(n - 1);
    for (int s = 1; s < n; s++) {
      cuts.push_back(RoutingKeyFor(Slice(kvs[kvs.size() * s / n].first)));
    }
    router_->SetBoundaries(std::move(cuts));
  } else if (router_->options().universe_hi == 0 && !kvs.empty()) {
    router_->SetUniverse(
        std::max<Key>(1, RoutingKeyFor(Slice(kvs.front().first))),
        RoutingKeyFor(Slice(kvs.back().first)) + 2);
  }
  router_->SetTreeHeight(static_cast<double>(sherman_.DebugHeight()));
}

int HybridSystem::AddMemoryServer() {
  const int id = sherman_.AddMemoryServer();
  rpc_service_.InstallOn(id);
  return id;
}

}  // namespace sherman
