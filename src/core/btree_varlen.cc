// Variable-length record operations of TreeClient (shape.varlen mode):
// string-keyed point/batch/scan ops over slotted-page leaves, the
// pointer-swizzle read fast path, and the value-log GC driver.
//
// The fixed-size ops live in core/btree.cc; this file reuses every
// traversal, lock, intent, and crash-site primitive so varlen trees pay
// the same simulated round trips and recover through the same machinery.
// Routing is unchanged u64 B-link traversal on RoutingKeyFor(key): keys
// sharing a routing key always share a leaf, so internal nodes, fences,
// the index cache, and the recoverer never see a byte string.
#include <algorithm>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/btree.h"
#include "fault/crash_point.h"
#include "util/logging.h"
#include "vlog/vlog.h"

namespace sherman {

namespace {
constexpr int kMaxSiblingChase = 64;  // matches btree.cc
// Cap on READs per doorbell ring (real NIC postlists are bounded).
constexpr size_t kMaxReadBatch = 16;
// Swizzle-hint map bound; overflow clears (hints are speculative and
// re-validated against the leaf on every use, so losing them only costs
// the second round trip they would have saved).
constexpr size_t kVptrCacheCap = 4096;

// Varlen leaf splits hit the same remote-write milestones as fixed ones;
// RegisterCrashSite is idempotent by name, so these resolve to the ids
// btree.cc registered and the recover_test sweep / SHERMAN_CRASH_AT cover
// both paths with one site set.
const int kCrashSplitIntent = fault::RegisterCrashSite("split.intent");
const int kCrashSplitSibling = fault::RegisterCrashSite("split.sibling");
const int kCrashSplitLeaf = fault::RegisterCrashSite("split.leaf");
const int kCrashSplitLinked = fault::RegisterCrashSite("split.linked");

uint32_t LcpLen(const std::string& a, const std::string& b) {
  const size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) i++;
  return static_cast<uint32_t>(std::min<size_t>(i, 255));
}
}  // namespace

Status TreeClient::CheckVarKey(const Slice& key, Key* rk) const {
  const TreeShape& shape = opt().shape;
  SHERMAN_CHECK_MSG(shape.varlen, "var op on a fixed-size tree");
  if (key.empty() || key.size() > shape.max_key_len) {
    return Status::InvalidArgument("varlen key length out of range");
  }
  const Key r = RoutingKeyFor(key);
  // kNullKey / kMaxKey are fence sentinels in the routing tree; a key whose
  // first 8 bytes are all-zero or all-0xff would be unroutable.
  if (r == kNullKey || r == kMaxKey) {
    return Status::InvalidArgument("key routes to a reserved sentinel");
  }
  *rk = r;
  return Status::OK();
}

void TreeClient::RememberVptr(const std::string& key, uint64_t ptr,
                              uint16_t vlen) {
  if (vptr_cache_.size() >= kVptrCacheCap &&
      vptr_cache_.find(key) == vptr_cache_.end()) {
    vptr_cache_.clear();
  }
  vptr_cache_[key] = VptrHint{ptr, vlen};
}

void TreeClient::ForgetVptr(const std::string& key) { vptr_cache_.erase(key); }

// --- InsertVar --------------------------------------------------------------

sim::Task<Status> TreeClient::InsertVar(const Slice& key, const Slice& value,
                                        OpStats* stats) {
  Key rk = 0;
  Status st = CheckVarKey(key, &rk);
  if (!st.ok()) co_return st;
  const TreeOptions& o = opt();
  if (value.size() > 0xffff) {
    co_return Status::InvalidArgument("value exceeds the u16 length field");
  }
  const bool outline = value.size() > o.inline_threshold;
  if (outline && vlog::VlogClient::RecordBytes(key, value) >
                     (vlog::kMinExtentBytes << (vlog::kNumClasses - 1))) {
    co_return Status::InvalidArgument("value too large for the value log");
  }
  const rdma::FabricConfig& f = system_->fabric_.config();
  EpochPin pin(&system_->reclaim_, cs_id_);
  co_await system_->fabric_.simulator().Delay(f.cpu_op_overhead_ns);

  // Out-of-line values append BEFORE the leaf lock: the extent is private
  // until a leaf slot points at it, so a failed insert just retires it and
  // the append's round trip stays outside the lock hold time.
  const uint16_t vlen = static_cast<uint16_t>(value.size());
  uint64_t vptr = 0;
  uint8_t ptr_buf[8];
  const uint8_t* payload = reinterpret_cast<const uint8_t*>(value.data());
  uint32_t payload_len = vlen;
  if (outline) {
    StatusOr<uint64_t> p = co_await vlog_->Append(
        key, value, NodeView::VarFingerprint(key), stats);
    if (!p.ok()) co_return p.status();
    vptr = *p;
    std::memcpy(ptr_buf, &vptr, 8);
    payload = ptr_buf;
    payload_len = 8;
  }

  const std::string key_str(key.data(), key.size());
  for (uint32_t attempt = 0; attempt < o.max_restarts; attempt++) {
    StatusOr<LeafRef> leaf_r =
        co_await FindLeafAddr(rk, stats, /*allow_hint=*/attempt == 0);
    if (!leaf_r.ok()) {
      if (outline) co_await vlog_->Retire(vptr, stats);
      co_return leaf_r.status();
    }
    std::vector<uint8_t> buf(node_size());
    StatusOr<Locked> locked_r =
        co_await LockAndRead(leaf_r->addr, rk, buf.data(), stats);
    if (!locked_r.ok()) {
      if (locked_r.status().IsRetry()) {
        if (leaf_r->via_hint) NoteHintStale(rk);
        if (attempt >= 2) root_known_ = false;  // stale root (see Insert)
        continue;
      }
      if (outline) co_await vlog_->Retire(vptr, stats);
      co_return locked_r.status();
    }
    Locked locked = *locked_r;
    NodeView view(buf.data(), &o.shape);

    co_await system_->fabric_.simulator().Delay(f.cpu_node_search_ns);
    // An update replacing an out-of-line value must retire the old extent
    // — but only AFTER the repointed leaf has published (readers holding
    // the old pointer are epoch-pinned).
    uint64_t old_ptr = 0;
    {
      const uint32_t at = view.VarFind(key);
      if (at != UINT32_MAX && view.VarOutline(at)) {
        old_ptr = view.VarVlogPtr(at);
      }
    }
    if (view.VarInsert(key, payload, payload_len, vlen, outline)) {
      SealNode(view, /*structural_change=*/false);
      if (stats != nullptr) stats->bytes_written += node_size();
      std::vector<rdma::WorkRequest> wrs;
      wrs.push_back(
          rdma::WorkRequest::Write(locked.addr, buf.data(), node_size()));
      co_await hocl_.Unlock(locked.guard, std::move(wrs), o.combine_commands,
                            stats);
      if (old_ptr != 0) co_await vlog_->Retire(old_ptr, stats);
      if (outline) {
        RememberVptr(key_str, vptr, vlen);
      } else {
        ForgetVptr(key_str);
      }
      co_return Status::OK();
    }
    st = co_await SplitVarLeafAndUnlock(locked, std::move(buf), key, payload,
                                        payload_len, vlen, outline, stats);
    if (st.ok()) {
      if (old_ptr != 0) co_await vlog_->Retire(old_ptr, stats);
      if (outline) {
        RememberVptr(key_str, vptr, vlen);
      } else {
        ForgetVptr(key_str);
      }
    } else if (outline) {
      co_await vlog_->Retire(vptr, stats);  // orphan: never referenced
    }
    co_return st;
  }
  if (outline) co_await vlog_->Retire(vptr, stats);
  co_return Status::Internal("insert restarts exhausted");
}

sim::Task<Status> TreeClient::SplitVarLeafAndUnlock(
    Locked locked, std::vector<uint8_t> buf, const Slice& key,
    const uint8_t* payload, uint32_t payload_len, uint16_t vlen, bool outline,
    OpStats* stats) {
  SHERMAN_TEVENT(stats != nullptr ? stats->trace : nullptr, "tree.split_leaf");
  const TreeOptions& o = opt();
  const rdma::FabricConfig& f = system_->fabric_.config();
  NodeView view(buf.data(), &o.shape);
  co_await system_->fabric_.simulator().Delay(f.cpu_node_sort_ns);

  // Materialize the live entries and apply the pending insert (replace or
  // sorted insert) — mirrors the fixed split's collect step.
  std::vector<VarEntry> entries = ExtractVarEntries(view);
  VarEntry pending;
  pending.key.assign(key.data(), key.size());
  pending.payload.assign(payload, payload + payload_len);
  pending.vlen = vlen;
  pending.outline = outline;
  bool replaced = false;
  for (auto& e : entries) {
    if (e.key == pending.key) {
      e = pending;
      replaced = true;
      break;
    }
  }
  if (!replaced) {
    auto it = std::lower_bound(
        entries.begin(), entries.end(), pending,
        [](const VarEntry& a, const VarEntry& b) { return a.key < b.key; });
    entries.insert(it, std::move(pending));
  }

  // Pick the cut: only a ROUTING-KEY boundary is legal (the u64 fences
  // cannot separate keys sharing a routing key), both halves must fit
  // under their own maximal prefix, and among legal cuts we take the most
  // byte-balanced one. Per-candidate byte costs come from prefix sums:
  // half bytes = slots + (raw key+payload bytes - n*prefix) + prefix.
  const size_t n = entries.size();
  std::vector<uint64_t> raw(n + 1, 0);  // cumulative key+payload bytes
  for (size_t i = 0; i < n; i++) {
    raw[i + 1] =
        raw[i] + entries[i].key.size() + entries[i].payload.size();
  }
  const uint64_t budget = o.shape.var_usable_bytes();
  size_t cut = 0;
  uint64_t best = UINT64_MAX;
  for (size_t i = 1; i < n; i++) {
    if (RoutingKeyFor(entries[i].key) == RoutingKeyFor(entries[i - 1].key)) {
      continue;
    }
    const uint64_t pl = LcpLen(entries[0].key, entries[i - 1].key);
    const uint64_t pr = LcpLen(entries[i].key, entries[n - 1].key);
    const uint64_t left =
        i * kVarSlotSize + (raw[i] - i * pl) + pl;
    const uint64_t right =
        (n - i) * kVarSlotSize + (raw[n] - raw[i] - (n - i) * pr) + pr;
    if (left > budget || right > budget) continue;
    const uint64_t diff = left > right ? left - right : right - left;
    if (diff < best) {
      best = diff;
      cut = i;
    }
  }
  if (cut == 0) {
    // Either every key routes identically, or the one legal boundary
    // leaves an oversize half. Validate() guarantees two maximal entries
    // fit, so this takes max-length keys differing only past byte 8 — a
    // clean error beats a wedged retry loop.
    co_await hocl_.Unlock(locked.guard, {}, o.combine_commands, stats);
    co_return Status::InvalidArgument(
        "keys sharing one routing key exceed leaf capacity");
  }
  const Key split_key = RoutingKeyFor(entries[cut].key);

  const rdma::GlobalAddress sib_addr = co_await allocator_.Alloc(node_size());
  if (sib_addr.is_null()) {
    co_await hocl_.Unlock(locked.guard, {}, o.combine_commands, stats);
    co_return Status::OutOfMemory("disaggregated memory exhausted");
  }

  const Key old_lo = view.lo_fence();
  const Key old_hi = view.hi_fence();
  const rdma::GlobalAddress old_sibling = view.sibling();
  const uint8_t new_version = (view.front_version() + 1) & 0xf;

  // Anchor the split before its first remote write (see SplitLeafAndUnlock;
  // RecoverSplit replays the u64 separator, which is all it needs — the
  // byte keys live only inside the two leaves).
  recover::IntentRecord intent;
  intent.op = recover::IntentOp::kSplit;
  intent.level = 0;
  intent.lo = old_lo;
  intent.hi = old_hi;
  intent.primary = locked.addr;
  intent.second = sib_addr;
  intent.aux = split_key;
  const int intent_slot = co_await intents_.Publish(intent, stats);
  co_await fault::Injector().AtSite(kCrashSplitIntent, cs_id_);

  // Build the sibling: upper part, fences [split_key, old_hi).
  std::vector<uint8_t> sib_buf(node_size());
  NodeView sib(sib_buf.data(), &o.shape);
  sib.InitLeaf(split_key, old_hi, old_sibling);
  SHERMAN_CHECK(BuildVarLeaf(
      &sib, std::vector<VarEntry>(entries.begin() + cut, entries.end())));
  if (o.consistency == TreeOptions::Consistency::kChecksum) {
    sib.UpdateChecksum();
  }

  // Rebuild this node: lower part, fences [old_lo, split_key).
  view.InitLeaf(old_lo, split_key, sib_addr);
  entries.resize(cut);
  SHERMAN_CHECK(BuildVarLeaf(&view, entries));
  buf[kOffFnv] = new_version;
  buf[o.shape.node_size - 1] = new_version;
  if (o.consistency == TreeOptions::Consistency::kChecksum) {
    view.UpdateChecksum();
  }
  if (stats != nullptr) stats->bytes_written += 2ull * node_size();

  // Same-MS siblings ride the commit batch; cross-MS ones publish with
  // their own awaited WRITE (see the fixed split's rationale).
  std::vector<rdma::WorkRequest> wrs;
  if (sib_addr.node == locked.addr.node) {
    wrs.push_back(
        rdma::WorkRequest::Write(sib_addr, sib_buf.data(), node_size()));
    wrs.back().intent_slot = static_cast<uint8_t>(intent_slot);
  } else {
    rdma::WorkRequest sw =
        rdma::WorkRequest::Write(sib_addr, sib_buf.data(), node_size());
    sw.intent_slot = static_cast<uint8_t>(intent_slot);
    rdma::RdmaResult r = co_await QpFor(sib_addr).Post(sw);
    if (stats != nullptr) stats->round_trips++;
    SHERMAN_CHECK(r.status.ok());
    co_await fault::Injector().AtSite(kCrashSplitSibling, cs_id_);
  }
  wrs.push_back(
      rdma::WorkRequest::Write(locked.addr, buf.data(), node_size()));
  wrs.back().intent_slot = static_cast<uint8_t>(intent_slot);
  co_await hocl_.Unlock(locked.guard, std::move(wrs), o.combine_commands,
                        stats);
  if (dmsan::Active()) {
    if (dmsan::Checker* dc = dmsan::Find(&system_->fabric_.simulator())) {
      dc->PublishNode(sib_addr, /*level=*/0);
    }
  }
  co_await fault::Injector().AtSite(kCrashSplitLeaf, cs_id_);

  Status st = co_await InsertInternal(split_key, sib_addr,
                                      static_cast<uint8_t>(view.level() + 1),
                                      stats);
  co_await fault::Injector().AtSite(kCrashSplitLinked, cs_id_);
  intents_.ClearAsync(intent_slot);
  // Advisory hint for the new sibling, after the intent clears (mirrors
  // the fixed-size split; a crash mid-publish leaves the committed split
  // merely unhinted).
  co_await HintPublish(sib_addr, split_key, stats);
  co_return st;
}

// --- LookupVar --------------------------------------------------------------

sim::Task<Status> TreeClient::ResolveVarValue(const NodeView& view, uint32_t i,
                                              const Slice& key,
                                              std::string* value,
                                              OpStats* stats) {
  if (!view.VarOutline(i)) {
    const Slice v = view.VarInlineValue(i);
    value->assign(v.data(), v.size());
    co_return Status::OK();
  }
  const uint64_t ptr = view.VarVlogPtr(i);
  const uint16_t vlen = view.VarVlen(i);
  Status st = co_await vlog_->Read(ptr, key, vlen, value, stats);
  if (st.ok()) RememberVptr(std::string(key.data(), key.size()), ptr, vlen);
  co_return st;
}

sim::Task<Status> TreeClient::LookupVar(const Slice& key, std::string* value,
                                        OpStats* stats) {
  Key rk = 0;
  Status st = CheckVarKey(key, &rk);
  if (!st.ok()) co_return st;
  const TreeOptions& o = opt();
  const rdma::FabricConfig& f = system_->fabric_.config();
  EpochPin pin(&system_->reclaim_, cs_id_);
  co_await system_->fabric_.simulator().Delay(f.cpu_op_overhead_ns);
  const std::string key_str(key.data(), key.size());

  std::vector<uint8_t> buf(node_size());

  // Swizzle fast path: with a cached leaf translation AND a cached value
  // pointer, the leaf READ and the value READ go out together (one
  // doorbell when same-MS, concurrent posts otherwise) and the fetched
  // leaf validates the speculation — collapsing the two dependent round
  // trips of an out-of-line read into one. The EpochPin makes the
  // speculative extent READ safe even against a concurrent retire.
  auto hint_it = vptr_cache_.find(key_str);
  if (o.enable_cache && hint_it != vptr_cache_.end()) {
    co_await system_->fabric_.simulator().Delay(f.cpu_cache_lookup_ns);
    const ParsedInternal* p = cache_.LookupLevel1(rk);
    const VptrHint hint = hint_it->second;
    const uint32_t rec_len = vlog::kRecordHeader +
                             static_cast<uint32_t>(key.size()) + hint.vlen;
    if (p != nullptr && rec_len <= vlog::VlogPtr::ExtentBytes(hint.ptr)) {
      const rdma::GlobalAddress leaf_addr = p->ChildFor(rk);
      const rdma::GlobalAddress vaddr = vlog::VlogPtr::Addr(hint.ptr);
      std::vector<uint8_t> vbuf(rec_len);
      if (stats != nullptr) stats->cache_hits++;
      if (vaddr.node == leaf_addr.node) {
        std::vector<rdma::WorkRequest> wrs;
        wrs.push_back(
            rdma::WorkRequest::Read(leaf_addr, buf.data(), node_size()));
        wrs.push_back(rdma::WorkRequest::Read(vaddr, vbuf.data(), rec_len));
        rdma::RdmaResult r =
            co_await QpFor(leaf_addr).PostReadBatch(std::move(wrs));
        SHERMAN_CHECK(r.status.ok());
        if (stats != nullptr) stats->round_trips++;
      } else {
        sim::CountdownLatch latch(2);
        sim::Spawn(ReadInto(leaf_addr, buf.data(), node_size(), &latch));
        sim::Spawn(ReadInto(vaddr, vbuf.data(), rec_len, &latch));
        co_await latch.Wait();
        if (stats != nullptr) stats->round_trips++;
      }
      NodeView view(buf.data(), &o.shape);
      if (NodeConsistent(buf.data()) && !view.is_free() && view.is_leaf() &&
          view.InFence(rk)) {
        co_await system_->fabric_.simulator().Delay(f.cpu_node_search_ns);
        const uint32_t at = view.VarFind(key);
        if (at == UINT32_MAX) {
          ForgetVptr(key_str);
          co_return Status::NotFound();
        }
        if (!view.VarOutline(at)) {
          ForgetVptr(key_str);
          const Slice v = view.VarInlineValue(at);
          value->assign(v.data(), v.size());
          co_return Status::OK();
        }
        if (view.VarVlogPtr(at) == hint.ptr && view.VarVlen(at) == hint.vlen) {
          // Speculation confirmed by the leaf: parse the record fetched
          // alongside. A header/key mismatch means our extent READ raced
          // the append that published this pointer — resolve freshly.
          uint16_t klen = 0;
          uint16_t got_vlen = 0;
          std::memcpy(&klen, vbuf.data(), 2);
          std::memcpy(&got_vlen, vbuf.data() + 2, 2);
          if (klen == key.size() && got_vlen == hint.vlen &&
              std::memcmp(vbuf.data() + vlog::kRecordHeader, key.data(),
                          klen) == 0) {
            value->assign(reinterpret_cast<const char*>(vbuf.data()) +
                              vlog::kRecordHeader + klen,
                          got_vlen);
            co_return Status::OK();
          }
        }
        // Pointer moved since the hint (update or GC relocation): the
        // fetched leaf is valid, so resolve from it.
        ForgetVptr(key_str);
        st = co_await ResolveVarValue(view, at, key, value, stats);
        if (!st.IsCorruption()) co_return st;
        // Relocated between leaf and value read; take the slow loop.
      }
      if (stats != nullptr) stats->read_retries++;
    }
  }

  rdma::GlobalAddress probe_addr;  // last tombstone this lookup bounced off
  for (uint32_t attempt = 0; attempt < o.max_restarts; attempt++) {
    StatusOr<LeafRef> leaf_r =
        co_await FindLeafAddr(rk, stats, /*allow_hint=*/attempt == 0);
    if (!leaf_r.ok()) co_return leaf_r.status();
    rdma::GlobalAddress addr = leaf_r->addr;

    bool restart = false;
    uint32_t entry_retries = 0;
    for (int chase = 0; chase < kMaxSiblingChase && !restart; chase++) {
      Status rst = co_await ReadNodeChecked(addr, buf.data(), stats);
      if (!rst.ok()) co_return rst;
      NodeView view(buf.data(), &o.shape);
      if (view.is_free() || !view.is_leaf() || rk < view.lo_fence()) {
        cache_.InvalidateLevel1Covering(rk);
        if (leaf_r->via_hint && chase == 0) NoteHintStale(rk);
        if (view.is_free()) probe_addr = addr;
        if (attempt >= 2) root_known_ = false;  // stale root (see Insert)
        restart = true;
        break;
      }
      if (rk >= view.hi_fence()) {
        cache_.InvalidateLevel1Covering(rk);
        if (leaf_r->via_hint && chase == 0) NoteHintChase();
        if (view.sibling().is_null()) {
          restart = true;
          break;
        }
        addr = view.sibling();
        continue;
      }
      co_await system_->fabric_.simulator().Delay(f.cpu_node_search_ns);
      const uint32_t at = view.VarFind(key);
      if (at == UINT32_MAX) co_return Status::NotFound();
      rst = co_await ResolveVarValue(view, at, key, value, stats);
      if (rst.IsCorruption()) {
        // The extent moved between the leaf read and the value read (an
        // update or GC); the re-read leaf carries the fresh pointer.
        if (stats != nullptr) stats->read_retries++;
        if (++entry_retries > o.max_read_retries) {
          co_return Status::TimedOut("vlog read retries exhausted");
        }
        chase--;
        continue;
      }
      co_return rst;
    }
    if (!restart) {
      // Chase bound exhausted from a hinted start: the mirror predecessor
      // was across a hint-table hole, not this key's leaf (see Lookup).
      if (leaf_r->via_hint) NoteHintStale(rk);
      if (attempt >= 2) root_known_ = false;
    }
    if (!probe_addr.is_null() && (attempt & 7) == 7) {
      co_await ProbeLockForRecovery(probe_addr, stats);
      probe_addr = rdma::GlobalAddress();
    }
  }
  co_return Status::Internal("lookup restarts exhausted");
}

// --- DeleteVar --------------------------------------------------------------

sim::Task<Status> TreeClient::DeleteVar(const Slice& key, OpStats* stats) {
  Key rk = 0;
  Status st = CheckVarKey(key, &rk);
  if (!st.ok()) co_return st;
  const TreeOptions& o = opt();
  const rdma::FabricConfig& f = system_->fabric_.config();
  EpochPin pin(&system_->reclaim_, cs_id_);
  co_await system_->fabric_.simulator().Delay(f.cpu_op_overhead_ns);
  const std::string key_str(key.data(), key.size());

  for (uint32_t attempt = 0; attempt < o.max_restarts; attempt++) {
    StatusOr<LeafRef> leaf_r =
        co_await FindLeafAddr(rk, stats, /*allow_hint=*/attempt == 0);
    if (!leaf_r.ok()) co_return leaf_r.status();

    std::vector<uint8_t> buf(node_size());
    StatusOr<Locked> locked_r =
        co_await LockAndRead(leaf_r->addr, rk, buf.data(), stats);
    if (!locked_r.ok()) {
      if (locked_r.status().IsRetry()) {
        if (leaf_r->via_hint) NoteHintStale(rk);
        if (attempt >= 2) root_known_ = false;  // stale root (see Insert)
        continue;
      }
      co_return locked_r.status();
    }
    Locked locked = *locked_r;
    NodeView view(buf.data(), &o.shape);

    co_await system_->fabric_.simulator().Delay(f.cpu_node_search_ns);
    const uint32_t at = view.VarFind(key);
    if (at == UINT32_MAX) {
      co_await hocl_.Unlock(locked.guard, {}, o.combine_commands, stats);
      co_return Status::NotFound();
    }
    const uint64_t old_ptr = view.VarOutline(at) ? view.VarVlogPtr(at) : 0;
    view.VarRemoveAt(at);
    SealNode(view, /*structural_change=*/false);

    delete_ops_++;
    bool merged = false;
    if (MergeCandidate(view, view.count()) && MergeBackoffExpired(locked.addr)) {
      merged = co_await TryMergeLeafLocked(locked, buf.data(), stats);
    }
    if (!merged) {
      if (stats != nullptr) stats->bytes_written += node_size();
      std::vector<rdma::WorkRequest> wrs;
      wrs.push_back(
          rdma::WorkRequest::Write(locked.addr, buf.data(), node_size()));
      co_await hocl_.Unlock(locked.guard, std::move(wrs), o.combine_commands,
                            stats);
    }
    // Retire only after the delete (or merge) published: readers that
    // fetched the old leaf meanwhile finish under their epoch pin.
    ForgetVptr(key_str);
    if (old_ptr != 0) co_await vlog_->Retire(old_ptr, stats);
    co_return Status::OK();
  }
  co_return Status::Internal("delete restarts exhausted");
}

// --- ScanVar ----------------------------------------------------------------

sim::Task<Status> TreeClient::ScanVar(
    const Slice& from, uint32_t count,
    std::vector<std::pair<std::string, std::string>>* out, OpStats* stats) {
  const TreeOptions& o = opt();
  SHERMAN_CHECK_MSG(o.shape.varlen, "var op on a fixed-size tree");
  const rdma::FabricConfig& f = system_->fabric_.config();
  out->clear();
  if (count == 0) co_return Status::OK();
  if (from.size() > o.shape.max_key_len) {
    co_return Status::InvalidArgument("scan start key too long");
  }
  EpochPin pin(&system_->reclaim_, cs_id_);
  co_await system_->fabric_.simulator().Delay(f.cpu_op_overhead_ns);

  std::vector<uint8_t> buf(node_size());
  // Byte cursor: the smallest key not yet emitted. Emitted keys never
  // repeat across restarts (strictly-greater filter once anything was
  // emitted), mirroring RangeQuery's cursor discipline.
  std::string cursor(from.data(), from.size());
  bool cursor_inclusive = true;
  rdma::GlobalAddress probe_addr;
  for (uint32_t attempt = 0; attempt < o.max_restarts; attempt++) {
    if (!probe_addr.is_null() && attempt > 0 && (attempt & 7) == 0) {
      co_await ProbeLockForRecovery(probe_addr, stats);
      probe_addr = rdma::GlobalAddress();
    }
    Key rk = RoutingKeyFor(cursor);
    if (rk == kMaxKey) co_return Status::OK();  // nothing can sort >= cursor
    StatusOr<LeafRef> leaf_r =
        co_await FindLeafAddr(rk, stats, /*allow_hint=*/attempt == 0);
    if (!leaf_r.ok()) co_return leaf_r.status();
    rdma::GlobalAddress addr = leaf_r->addr;

    bool restart = false;
    uint32_t entry_retries = 0;
    for (int chase = 0; chase < kMaxSiblingChase && !restart; chase++) {
      Status st = co_await ReadNodeChecked(addr, buf.data(), stats);
      if (!st.ok()) co_return st;
      NodeView view(buf.data(), &o.shape);
      if (view.is_free() || !view.is_leaf() || rk < view.lo_fence()) {
        cache_.InvalidateLevel1Covering(rk);
        if (view.is_free()) probe_addr = addr;
        if (attempt >= 2) root_known_ = false;
        restart = true;
        break;
      }
      if (rk >= view.hi_fence()) {
        cache_.InvalidateLevel1Covering(rk);
        if (view.sibling().is_null()) {
          restart = true;
          break;
        }
        addr = view.sibling();
        continue;
      }
      co_await system_->fabric_.simulator().Delay(f.cpu_node_search_ns);
      // Emit this leaf's entries past the cursor, resolving out-of-line
      // values as we go; a Corruption (extent relocated under us) re-reads
      // the leaf, and the advancing cursor skips what was already emitted.
      bool reread = false;
      const uint32_t slots = view.count();
      for (uint32_t s = 0; s < slots && out->size() < count; s++) {
        std::string k = view.VarFullKey(s);
        if (cursor_inclusive ? k < cursor : k <= cursor) continue;
        std::string v;
        Status rst = co_await ResolveVarValue(view, s, Slice(k), &v, stats);
        if (rst.IsCorruption()) {
          reread = true;
          break;
        }
        if (!rst.ok()) co_return rst;
        out->emplace_back(std::move(k), std::move(v));
        cursor = out->back().first;
        cursor_inclusive = false;
      }
      if (reread) {
        if (stats != nullptr) stats->read_retries++;
        if (++entry_retries > o.max_read_retries) {
          co_return Status::TimedOut("scan vlog retries exhausted");
        }
        chase--;
        continue;
      }
      if (out->size() >= count || view.hi_fence() == kMaxKey) {
        co_return Status::OK();
      }
      // Next leaf: keys there are > everything emitted; advance the
      // routing cursor to the fence so the chase checks stay coherent.
      rk = view.hi_fence();
      if (view.sibling().is_null()) {
        restart = true;
        break;
      }
      addr = view.sibling();
    }
  }
  co_return Status::Internal("scan restarts exhausted");
}

// --- MultiGetVar ------------------------------------------------------------

sim::Task<void> TreeClient::ResolveVarInto(uint64_t ptr,
                                           const std::string* key,
                                           uint16_t vlen, VarGetResult* out,
                                           OpStats* stats,
                                           sim::CountdownLatch* latch) {
  out->status = co_await vlog_->Read(ptr, *key, vlen, &out->value, stats);
  if (out->status.ok()) RememberVptr(*key, ptr, vlen);
  latch->Arrive();
}

sim::Task<Status> TreeClient::MultiGetVar(std::vector<std::string> keys,
                                          std::vector<VarGetResult>* out,
                                          OpStats* stats) {
  const TreeOptions& o = opt();
  const rdma::FabricConfig& f = system_->fabric_.config();
  sim::Simulator& sim = system_->fabric_.simulator();
  out->assign(keys.size(), VarGetResult{});
  if (keys.empty()) co_return Status::OK();
  EpochPin pin(&system_->reclaim_, cs_id_);
  co_await sim.Delay(f.cpu_op_overhead_ns);

  const size_t n = keys.size();
  std::vector<Key> rks(n, 0);
  std::vector<uint8_t> bad(n, 0);
  for (size_t i = 0; i < n; i++) {
    Status st = CheckVarKey(keys[i], &rks[i]);
    if (!st.ok()) {
      (*out)[i].status = st;
      bad[i] = 1;
    }
  }

  // Phase 1 — plan distinct ROUTING keys (string duplicates and
  // same-routing-group keys share one descent and one leaf fetch).
  std::map<Key, size_t> plan_of;
  std::vector<Key> uniq;
  for (size_t i = 0; i < n; i++) {
    if (bad[i]) continue;
    auto [it, inserted] = plan_of.try_emplace(rks[i], uniq.size());
    if (inserted) uniq.push_back(rks[i]);
  }
  std::vector<LeafRef> refs(uniq.size());
  std::vector<Status> plan_st(uniq.size(), Status::OK());
  {
    SHERMAN_TSPAN(stats != nullptr ? stats->trace : nullptr, "batch.plan",
                  uniq.size());
    sim::CountdownLatch latch(uniq.size());
    for (size_t j = 0; j < uniq.size(); j++) {
      sim::Spawn(PlanLeafInto(uniq[j], &refs[j], &plan_st[j], stats, &latch));
    }
    co_await latch.Wait();
  }

  // Phase 2 — fetch distinct leaves, doorbell-batched per MS.
  std::map<uint64_t, size_t> buf_of;
  std::vector<rdma::GlobalAddress> leaves;
  std::vector<size_t> key_buf(n, SIZE_MAX);
  for (size_t i = 0; i < n; i++) {
    if (bad[i]) continue;
    const size_t j = plan_of[rks[i]];
    if (!plan_st[j].ok()) continue;
    const rdma::GlobalAddress addr = refs[j].addr;
    auto [it, inserted] = buf_of.try_emplace(addr.ToU64(), leaves.size());
    if (inserted) leaves.push_back(addr);
    key_buf[i] = it->second;
  }
  std::vector<std::vector<uint8_t>> bufs(leaves.size(),
                                         std::vector<uint8_t>(node_size()));
  std::map<uint16_t, std::vector<rdma::WorkRequest>> per_ms;
  for (size_t j = 0; j < leaves.size(); j++) {
    per_ms[leaves[j].node].push_back(
        rdma::WorkRequest::Read(leaves[j], bufs[j].data(), node_size()));
  }
  std::vector<std::pair<uint16_t, std::vector<rdma::WorkRequest>>> rings;
  for (auto& [ms, wrs] : per_ms) {
    for (size_t at = 0; at < wrs.size(); at += kMaxReadBatch) {
      const size_t end = std::min(at + kMaxReadBatch, wrs.size());
      rings.emplace_back(ms, std::vector<rdma::WorkRequest>(
                                 wrs.begin() + at, wrs.begin() + end));
    }
  }
  const sim::SimTime fetch_start = sim.now();
  if (!rings.empty()) {
    SHERMAN_TSPAN(stats != nullptr ? stats->trace : nullptr, "multiget.fetch",
                  rings.size());
    sim::CountdownLatch latch(rings.size());
    for (auto& [ms, wrs] : rings) {
      sim::Spawn(PostReadsInto(ms, std::move(wrs), stats, &latch));
    }
    co_await latch.Wait();
  }
  const bool slow_fetch =
      o.consistency == TreeOptions::Consistency::kVersions &&
      sim.now() - fetch_start > WrapGuardNs();

  // Phase 3 — validate; inline values serve locally, out-of-line ones are
  // collected and resolved concurrently (one latch over all vlog READs).
  struct Job {
    size_t idx;
    uint64_t ptr;
    uint16_t vlen;
  };
  std::vector<Job> jobs;
  std::vector<size_t> retry;
  for (size_t i = 0; i < n; i++) {
    if (bad[i]) continue;
    if (key_buf[i] == SIZE_MAX) {
      retry.push_back(i);
      continue;
    }
    uint8_t* b = bufs[key_buf[i]].data();
    NodeView view(b, &o.shape);
    if (slow_fetch || !NodeConsistent(b)) {
      if (stats != nullptr) stats->read_retries++;
      retry.push_back(i);
      continue;
    }
    if (view.is_free() || !view.is_leaf() || !view.InFence(rks[i])) {
      cache_.InvalidateLevel1Covering(rks[i]);
      retry.push_back(i);
      continue;
    }
    co_await sim.Delay(f.cpu_node_search_ns);
    const uint32_t at = view.VarFind(keys[i]);
    if (at == UINT32_MAX) {
      (*out)[i].status = Status::NotFound();
      continue;
    }
    if (!view.VarOutline(at)) {
      const Slice v = view.VarInlineValue(at);
      (*out)[i].status = Status::OK();
      (*out)[i].value.assign(v.data(), v.size());
      continue;
    }
    jobs.push_back(Job{i, view.VarVlogPtr(at), view.VarVlen(at)});
  }
  if (!jobs.empty()) {
    SHERMAN_TSPAN(stats != nullptr ? stats->trace : nullptr,
                  "multiget.vlog_fetch", jobs.size());
    sim::CountdownLatch latch(jobs.size());
    for (const Job& j : jobs) {
      sim::Spawn(ResolveVarInto(j.ptr, &keys[j.idx], j.vlen, &(*out)[j.idx],
                                stats, &latch));
    }
    co_await latch.Wait();
    for (const Job& j : jobs) {
      // Relocated mid-flight: the singleton path re-reads leaf + value.
      if ((*out)[j.idx].status.IsCorruption()) retry.push_back(j.idx);
    }
  }

  // Phase 4 — re-serve stragglers op-at-a-time.
  SHERMAN_TSPAN(stats != nullptr ? stats->trace : nullptr,
                "multiget.fallback", retry.size());
  Status overall = Status::OK();
  for (size_t i : retry) {
    std::string v;
    Status st = co_await LookupVar(keys[i], &v, stats);
    (*out)[i].status = st;
    if (st.ok()) {
      (*out)[i].value = std::move(v);
    } else if (!st.IsNotFound() && overall.ok()) {
      overall = st;
    }
  }
  co_return overall;
}

// --- MultiInsertVar ---------------------------------------------------------

sim::Task<void> TreeClient::ApplyVarInsertGroup(
    rdma::GlobalAddress addr, std::vector<size_t> idxs,
    const std::vector<std::pair<std::string, std::string>>* kvs,
    const std::vector<uint64_t>* vptrs, std::vector<uint8_t>* defer,
    std::vector<uint64_t>* retired, OpStats* stats,
    sim::CountdownLatch* latch) {
  const TreeOptions& o = opt();
  const rdma::FabricConfig& f = system_->fabric_.config();
  std::vector<uint8_t> buf(node_size());
  const Key first_rk = RoutingKeyFor((*kvs)[idxs[0]].first);
  StatusOr<Locked> locked_r =
      co_await LockAndRead(addr, first_rk, buf.data(), stats);
  if (!locked_r.ok()) {
    for (size_t idx : idxs) (*defer)[idx] = 1;
    latch->Arrive();
    co_return;
  }
  Locked locked = *locked_r;
  NodeView view(buf.data(), &o.shape);

  bool dirty = false;
  for (size_t idx : idxs) {
    const std::string& key = (*kvs)[idx].first;
    const std::string& value = (*kvs)[idx].second;
    if (!view.InFence(RoutingKeyFor(key))) {  // sibling chase moved us off
      (*defer)[idx] = 1;
      continue;
    }
    co_await system_->fabric_.simulator().Delay(f.cpu_node_search_ns);
    const bool outline = (*vptrs)[idx] != 0;
    uint8_t ptr_buf[8];
    const uint8_t* payload;
    uint32_t payload_len;
    if (outline) {
      std::memcpy(ptr_buf, &(*vptrs)[idx], 8);
      payload = ptr_buf;
      payload_len = 8;
    } else {
      payload = reinterpret_cast<const uint8_t*>(value.data());
      payload_len = static_cast<uint32_t>(value.size());
    }
    uint64_t old_ptr = 0;
    {
      const uint32_t at = view.VarFind(key);
      if (at != UINT32_MAX && view.VarOutline(at)) {
        old_ptr = view.VarVlogPtr(at);
      }
    }
    if (!view.VarInsert(key, payload, payload_len,
                        static_cast<uint16_t>(value.size()), outline)) {
      (*defer)[idx] = 1;  // full: the split goes through InsertVar()
      continue;
    }
    if (old_ptr != 0) retired->push_back(old_ptr);
    if (outline) {
      RememberVptr(key, (*vptrs)[idx], static_cast<uint16_t>(value.size()));
    } else {
      ForgetVptr(key);
    }
    dirty = true;
  }
  std::vector<rdma::WorkRequest> wrs;
  if (dirty) {
    SealNode(view, /*structural_change=*/false);
    if (stats != nullptr) stats->bytes_written += node_size();
    wrs.push_back(
        rdma::WorkRequest::Write(locked.addr, buf.data(), node_size()));
  }
  co_await hocl_.Unlock(locked.guard, std::move(wrs), o.combine_commands,
                        stats);
  latch->Arrive();
}

sim::Task<Status> TreeClient::MultiInsertVar(
    std::vector<std::pair<std::string, std::string>> kvs, OpStats* stats) {
  const TreeOptions& o = opt();
  const rdma::FabricConfig& f = system_->fabric_.config();
  if (kvs.empty()) co_return Status::OK();
  const size_t n = kvs.size();
  std::vector<Key> rks(n, 0);
  for (size_t i = 0; i < n; i++) {
    Status st = CheckVarKey(kvs[i].first, &rks[i]);
    if (!st.ok()) co_return st;
    if (kvs[i].second.size() > 0xffff) {
      co_return Status::InvalidArgument("value exceeds the u16 length field");
    }
    if (kvs[i].second.size() > o.inline_threshold &&
        vlog::VlogClient::RecordBytes(kvs[i].first, kvs[i].second) >
            (vlog::kMinExtentBytes << (vlog::kNumClasses - 1))) {
      co_return Status::InvalidArgument("value too large for the value log");
    }
  }
  EpochPin pin(&system_->reclaim_, cs_id_);
  co_await system_->fabric_.simulator().Delay(f.cpu_op_overhead_ns);

  // Phase 0 — append every out-of-line value up front; extents stay
  // private until a leaf slot points at them. SEQUENTIAL on purpose:
  // Append mutates the per-class open segment between awaits, and two
  // concurrent rotations of one class would leak a segment.
  std::vector<uint64_t> vptrs(n, 0);
  for (size_t i = 0; i < n; i++) {
    if (kvs[i].second.size() <= o.inline_threshold) continue;
    StatusOr<uint64_t> p = co_await vlog_->Append(
        kvs[i].first, kvs[i].second, NodeView::VarFingerprint(kvs[i].first),
        stats);
    if (!p.ok()) co_return p.status();
    vptrs[i] = *p;
  }

  // Phase 1 — plan distinct routing keys concurrently.
  std::map<Key, size_t> plan_of;
  std::vector<Key> uniq;
  for (size_t i = 0; i < n; i++) {
    auto [it, inserted] = plan_of.try_emplace(rks[i], uniq.size());
    if (inserted) uniq.push_back(rks[i]);
  }
  std::vector<LeafRef> refs(uniq.size());
  std::vector<Status> plan_st(uniq.size(), Status::OK());
  {
    SHERMAN_TSPAN(stats != nullptr ? stats->trace : nullptr, "batch.plan",
                  uniq.size());
    sim::CountdownLatch latch(uniq.size());
    for (size_t j = 0; j < uniq.size(); j++) {
      sim::Spawn(PlanLeafInto(uniq[j], &refs[j], &plan_st[j], stats, &latch));
    }
    co_await latch.Wait();
  }

  // Phase 2 — group by target leaf; one lock + whole-node write per group.
  // Duplicate keys stay in one group (same routing plan), applied in batch
  // order: a later duplicate replaces the earlier one in the staged leaf
  // and queues the superseded extent on `retired`.
  std::vector<uint8_t> defer(n, 0);
  std::vector<uint64_t> retired;
  std::map<uint64_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < n; i++) {
    const size_t j = plan_of[rks[i]];
    if (plan_st[j].ok()) {
      groups[refs[j].addr.ToU64()].push_back(i);
    } else {
      defer[i] = 1;
    }
  }
  if (!groups.empty()) {
    SHERMAN_TSPAN(stats != nullptr ? stats->trace : nullptr, "batch.apply",
                  groups.size());
    sim::CountdownLatch latch(groups.size());
    for (auto& [addr_u64, idxs] : groups) {
      sim::Spawn(ApplyVarInsertGroup(rdma::GlobalAddress::FromU64(addr_u64),
                                     std::move(idxs), &kvs, &vptrs, &defer,
                                     &retired, stats, &latch));
    }
    co_await latch.Wait();
  }
  // Old extents replaced by the group applies: retire once every group's
  // write-back (publish) has landed.
  for (uint64_t p : retired) co_await vlog_->Retire(p, stats);

  // Phase 3 — deferred keys. A deferred OUT-OF-LINE value already has a
  // private extent; InsertVar appends its own copy, so retire the orphan
  // and let the singleton path own the value end to end.
  for (size_t i = 0; i < n; i++) {
    if (!defer[i]) continue;
    if (vptrs[i] != 0) co_await vlog_->Retire(vptrs[i], stats);
    Status st = co_await InsertVar(kvs[i].first, kvs[i].second, stats);
    if (!st.ok()) co_return st;
  }
  co_return Status::OK();
}

// --- Value-log GC -----------------------------------------------------------

sim::Task<Status> TreeClient::VlogGcOnce(uint64_t* relocated, OpStats* stats) {
  const TreeOptions& o = opt();
  SHERMAN_CHECK_MSG(o.shape.varlen, "vlog GC on a fixed-size tree");
  EpochPin pin(&system_->reclaim_, cs_id_);
  // Open segments are invisible to victim selection; seal them so this
  // pass sees the current generation.
  co_await vlog_->SealOpen(stats);
  uint64_t moved = 0;
  Status overall = Status::OK();
  for (int ms = 0; ms < system_->fabric_.num_memory_servers(); ms++) {
    const uint64_t v = co_await system_->fabric_.qp(cs_id_, ms)
                           .Rpc(kRpcVlogVictim, o.vlog_gc_dead_permille, 0);
    if (stats != nullptr) stats->round_trips++;
    if (v == 0) continue;
    const uint64_t base = v & ((1ull << 40) - 1);
    const uint32_t used = static_cast<uint32_t>((v >> 40) & 0xffff);
    const uint32_t cls = static_cast<uint32_t>(v >> 56);
    Status st = co_await GcVictimSegment(static_cast<uint16_t>(ms), base, cls,
                                         used, &moved, stats);
    if (!st.ok() && overall.ok()) overall = st;
  }
  vlog_->mutable_stats().gc_passes++;
  if (relocated != nullptr) *relocated = moved;
  co_return overall;
}

sim::Task<Status> TreeClient::GcVictimSegment(uint16_t ms, uint64_t base,
                                              uint32_t cls, uint32_t used,
                                              uint64_t* relocated,
                                              OpStats* stats) {
  const TreeOptions& o = opt();
  const uint32_t extent = vlog::kMinExtentBytes << cls;
  rdma::Qp& qp = system_->fabric_.qp(cs_id_, ms);

  // Dead-bitmap snapshot. Concurrent retires only ADD dead bits, so a bit
  // set after this read just means one extra stale-relocation check below
  // (the leaf pointer comparison catches it).
  std::vector<uint64_t> mask((used + 63) / 64, 0);
  for (uint32_t w = 0; w < mask.size(); w++) {
    mask[w] = co_await qp.Rpc(kRpcVlogMask, base, w);
    if (stats != nullptr) stats->round_trips++;
  }

  std::vector<uint8_t> rec_buf(extent);
  std::vector<uint8_t> leaf_buf(node_size());
  for (uint32_t slot = 0; slot < used; slot++) {
    if ((mask[slot / 64] >> (slot % 64)) & 1) continue;  // already dead
    const uint64_t off = base + static_cast<uint64_t>(slot) * extent;
    const uint64_t old_ptr = vlog::VlogPtr::Pack(0, static_cast<uint8_t>(cls),
                                                 ms, off);
    Status st = co_await ReadRaw(rdma::GlobalAddress(ms, off), rec_buf.data(),
                                 extent, stats);
    SHERMAN_CHECK(st.ok());
    uint16_t klen = 0;
    uint16_t vlen = 0;
    std::memcpy(&klen, rec_buf.data(), 2);
    std::memcpy(&vlen, rec_buf.data() + 2, 2);
    if (klen == 0 || klen > o.shape.max_key_len ||
        vlog::kRecordHeader + klen + vlen > extent) {
      // Unparseable (the owner died mid-append): no leaf can reference it;
      // retire so the segment can drain.
      co_await vlog_->Retire(old_ptr, stats);
      vlog_->mutable_stats().gc_stale++;
      continue;
    }
    const std::string key(
        reinterpret_cast<const char*>(rec_buf.data()) + vlog::kRecordHeader,
        klen);
    const Slice value(
        reinterpret_cast<const char*>(rec_buf.data()) + vlog::kRecordHeader +
            klen,
        vlen);
    const Key rk = RoutingKeyFor(key);

    // Tree-guided relocation, copy-then-flip under the leaf lock.
    bool done = false;
    for (uint32_t attempt = 0; attempt < o.max_restarts && !done; attempt++) {
      StatusOr<LeafRef> leaf_r =
          co_await FindLeafAddr(rk, stats, /*allow_hint=*/attempt == 0);
      if (!leaf_r.ok()) co_return leaf_r.status();
      StatusOr<Locked> locked_r =
          co_await LockAndRead(leaf_r->addr, rk, leaf_buf.data(), stats);
      if (!locked_r.ok()) {
        if (locked_r.status().IsRetry()) {
          if (leaf_r->via_hint) NoteHintStale(rk);
          if (attempt >= 2) root_known_ = false;
          continue;
        }
        co_return locked_r.status();
      }
      Locked locked = *locked_r;
      NodeView view(leaf_buf.data(), &o.shape);
      const uint32_t at = view.VarFind(key);
      const uint64_t cur =
          (at != UINT32_MAX && view.VarOutline(at)) ? view.VarVlogPtr(at) : 0;
      if (cur == 0 || vlog::VlogPtr::Cls(cur) != cls ||
          vlog::VlogPtr::Ms(cur) != ms || vlog::VlogPtr::Off(cur) != off) {
        // The leaf no longer references this extent (deleted, updated, or
        // retired after the bitmap snapshot).
        co_await hocl_.Unlock(locked.guard, {}, o.combine_commands, stats);
        vlog_->mutable_stats().gc_stale++;
        done = true;
        break;
      }
      // Copy: append the fresh record (lands in a new open segment, never
      // this sealed victim). Flip: repoint the slot and publish the node.
      StatusOr<uint64_t> fresh = co_await vlog_->Append(
          key, value, NodeView::VarFingerprint(key), stats);
      if (!fresh.ok()) {
        co_await hocl_.Unlock(locked.guard, {}, o.combine_commands, stats);
        co_return fresh.status();
      }
      view.VarSetVlogPtr(at, *fresh);
      SealNode(view, /*structural_change=*/false);
      if (stats != nullptr) stats->bytes_written += node_size();
      std::vector<rdma::WorkRequest> wrs;
      wrs.push_back(
          rdma::WorkRequest::Write(locked.addr, leaf_buf.data(), node_size()));
      co_await hocl_.Unlock(locked.guard, std::move(wrs), o.combine_commands,
                            stats);
      RememberVptr(key, *fresh, vlen);
      vlog_->mutable_stats().gc_relocated++;
      (*relocated)++;
      done = true;
    }
    if (!done) co_return Status::Internal("gc relocation restarts exhausted");
    // Retire AFTER the repoint (or the staleness proof) published; pinned
    // readers of the old extent drain under the grace epoch.
    co_await vlog_->Retire(old_ptr, stats);
  }
  co_return Status::OK();
}

}  // namespace sherman
