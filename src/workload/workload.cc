#include "workload/workload.h"

#include <algorithm>

#include "util/logging.h"

namespace sherman {

WorkloadGenerator::WorkloadGenerator(const WorkloadOptions& options,
                                     uint64_t seed)
    : options_(options), rng_(seed), value_counter_(seed << 20) {
  SHERMAN_CHECK(options.loaded_keys > 0);
  const double total = options.mix.insert + options.mix.lookup +
                       options.mix.range + options.mix.del;
  SHERMAN_CHECK_MSG(total > 0.999 && total < 1.001,
                    "workload mix must sum to 1 (got %.3f)", total);
  if (options.zipf_theta > 0) {
    zipf_ = std::make_unique<ScrambledZipfianGenerator>(options.loaded_keys,
                                                        options.zipf_theta);
  }
  if (options.string_keys) {
    SHERMAN_CHECK_MSG(options.string_key_min >= 16,
                      "string keys need the 16-byte hex stem");
    SHERMAN_CHECK(options.string_key_max >= options.string_key_min);
    SHERMAN_CHECK(options.string_value_min > 0);
    SHERMAN_CHECK(options.string_value_max >= options.string_value_min);
  }
}

std::string WorkloadGenerator::StringKeyFor(uint64_t key, uint32_t min_len,
                                            uint32_t max_len) {
  static const char kHex[] = "0123456789abcdef";
  // The stem: 16 hex digits of the scrambled key. Hex bytes are plain
  // ASCII, so the first 8 bytes can never collide with the routing-key
  // sentinels, and the FNV scramble spreads routing prefixes uniformly
  // regardless of how dense the u64 key space is.
  const uint64_t h = ScrambledZipfianGenerator::FnvHash(key);
  std::string s(16, '0');
  for (int i = 0; i < 16; i++) s[i] = kHex[(h >> (60 - 4 * i)) & 0xf];
  uint32_t len = min_len;
  if (max_len > min_len) {
    len += static_cast<uint32_t>(
        ScrambledZipfianGenerator::FnvHash(key ^ 0x9e3779b97f4a7c15ull) %
        (max_len - min_len + 1));
  }
  uint64_t filler = ScrambledZipfianGenerator::FnvHash(h);
  while (s.size() < len) {
    s.push_back(kHex[filler & 0xf]);
    filler = (filler >> 4) | (filler << 60);
  }
  return s;
}

uint32_t WorkloadGenerator::DrawValueLen() {
  const uint32_t lo = options_.string_value_min;
  const uint32_t hi = options_.string_value_max;
  if (hi <= lo) return lo;
  // Geometric ladder lo, 2*lo, 4*lo, ..., capped at hi: small inline
  // values and multi-KB outline values are both common, instead of the
  // uniform draw's mean sitting far above the inline threshold.
  uint32_t steps = 0;
  while ((lo << (steps + 1)) <= hi && steps < 30) steps++;
  const uint32_t e = static_cast<uint32_t>(rng_.Uniform(steps + 1));
  return std::min(hi, lo << e);
}

void WorkloadGenerator::FillStrings(Op* op) {
  if (!options_.string_keys) return;
  op->skey = StringKeyFor(op->key, options_.string_key_min,
                          options_.string_key_max);
  if (op->type == OpType::kInsert) {
    // Value bytes are a cheap deterministic pattern of op->value so an
    // oracle can recompute them; the LENGTH is the interesting part — a
    // re-draw per op makes updates cross the inline threshold both ways.
    const uint32_t len = DrawValueLen();
    op->svalue.resize(len);
    uint64_t x = ScrambledZipfianGenerator::FnvHash(op->value);
    for (uint32_t i = 0; i < len; i++) {
      op->svalue[i] = static_cast<char>('a' + ((x >> ((i & 7) * 8)) + i) % 26);
    }
  }
}

uint64_t WorkloadGenerator::KeyForRank(uint64_t rank) const {
  if (rank < options_.loaded_keys) return LoadedKeyFor(rank);
  return fresh_keys_[rank - options_.loaded_keys];
}

uint64_t WorkloadGenerator::NextRank() {
  uint64_t rank;
  if (options_.hotspot_share > 0 && rng_.Bernoulli(options_.hotspot_share)) {
    // Hotspot popularity: the hot set is `hotspot_keys` loaded ranks
    // scattered over the loaded prefix (always-present even keys, so a
    // hot GET is never a spurious NotFound).
    const uint64_t hot_n =
        options_.hotspot_keys > 0
            ? options_.hotspot_keys
            : std::max<uint64_t>(1, options_.loaded_keys / 100);
    rank = ScrambledZipfianGenerator::FnvHash(rng_.Uniform(hot_n)) %
           options_.loaded_keys;
  } else {
    rank = zipf_ != nullptr ? zipf_->Next(rng_) : rng_.Uniform(universe());
  }
  if (!options_.track_inserts) {
    // Frozen key space: the drawn rank must stay inside the loaded
    // prefix (the pre-fix invariant, kept on request).
    SHERMAN_CHECK(rank < options_.loaded_keys);
  }
  if (options_.hotspot_drift_ops > 0) {
    if (++ops_since_drift_ >= options_.hotspot_drift_ops) {
      ops_since_drift_ = 0;
      const uint64_t step = options_.hotspot_drift_step > 0
                                ? options_.hotspot_drift_step
                                : std::max<uint64_t>(1, options_.loaded_keys / 8);
      drift_offset_ = (drift_offset_ + step) % options_.loaded_keys;
    }
    // The rotation is defined over the loaded prefix; fresh ranks keep
    // their identity.
    if (rank < options_.loaded_keys) {
      rank = (rank + drift_offset_) % options_.loaded_keys;
    }
  }
  return rank;
}

Op WorkloadGenerator::Next() {
  Op op;
  if (options_.churn_window > 0) {
    // Churn mode: fixed live-key count. Delete the oldest inserted key
    // once the window is full, otherwise insert the next key of this
    // client's sliding sequence (FIFO expiry is time-correlated, so the
    // live window sweeps the key space: leaves fully drain behind it —
    // exercising merge/reclaim — while splits run ahead of it).
    if (churn_fifo_.size() >= options_.churn_window) {
      op.type = OpType::kDelete;
      op.key = churn_fifo_.front();
      churn_fifo_.pop_front();
    } else {
      if (!churn_started_) {
        churn_cursor_ = NextRank();  // seed-random start per client
        churn_started_ = true;
      }
      op.type = OpType::kInsert;
      op.key = LoadedKeyFor(churn_cursor_) + 1;
      churn_cursor_ = (churn_cursor_ + 1) % options_.loaded_keys;
      op.value = ++value_counter_;
      churn_fifo_.push_back(op.key);
    }
    FillStrings(&op);
    return op;
  }
  const double dice = rng_.NextDouble();
  const WorkloadMix& mix = options_.mix;
  const uint64_t rank = NextRank();
  const uint64_t key = KeyForRank(rank);

  if (dice < mix.insert) {
    op.type = OpType::kInsert;
    // ~2/3 of inserts update existing keys, the rest insert the adjacent
    // odd key (§5.1.3). A rank drawn from the grown universe folds back
    // into the loaded prefix so the update/fresh parity is independent
    // of how many fresh keys exist; with track_inserts the fresh odd key
    // joins the drawable universe, where read-side ops can reach it (and
    // re-inserting it again adds popularity weight).
    const uint64_t irank = rank % options_.loaded_keys;
    if (rng_.Bernoulli(options_.update_fraction)) {
      op.key = LoadedKeyFor(irank);
    } else {
      op.key = LoadedKeyFor(irank) + 1;
      if (options_.track_inserts) {
        fresh_keys_.push_back(op.key);
        if (zipf_ != nullptr) zipf_->GrowTo(universe());
      }
    }
    op.value = ++value_counter_;
  } else if (dice < mix.insert + mix.lookup) {
    op.type = OpType::kLookup;
    op.key = key;
  } else if (dice < mix.insert + mix.lookup + mix.range) {
    op.type = OpType::kRangeQuery;
    op.key = key;
    op.range_size = options_.range_size;
  } else {
    op.type = OpType::kDelete;
    op.key = key;
  }
  FillStrings(&op);
  return op;
}

bool ParseMix(const std::string& name, WorkloadMix* mix) {
  if (name == "write-only") {
    *mix = WorkloadMix::WriteOnly();
  } else if (name == "write-intensive") {
    *mix = WorkloadMix::WriteIntensive();
  } else if (name == "read-intensive") {
    *mix = WorkloadMix::ReadIntensive();
  } else if (name == "range-only") {
    *mix = WorkloadMix::RangeOnly();
  } else if (name == "range-write") {
    *mix = WorkloadMix::RangeWrite();
  } else {
    return false;
  }
  return true;
}

bool ParseMix(const std::string& name, WorkloadOptions* options) {
  if (name == "hotspot-drift") {
    options->mix = WorkloadMix::WriteIntensive();
    if (options->hotspot_drift_ops == 0) options->hotspot_drift_ops = 400;
    return true;
  }
  if (name == "hotspot") {
    // 99/1 extreme hotspot: 99% of ops on ~1% of the keys (bench_rdwc's
    // mix; hotspot_keys can further narrow the hot set).
    options->mix = WorkloadMix::WriteIntensive();
    if (options->hotspot_share == 0) options->hotspot_share = 0.99;
    return true;
  }
  if (name == "churn") {
    options->mix = WorkloadMix::WriteOnly();  // informational; churn ignores it
    if (options->churn_window == 0) options->churn_window = 256;
    return true;
  }
  if (name == "ycsb-string") {
    // The varlen tree's YCSB-style string preset: write-intensive mix,
    // string keys with the default length spreads (16-40B keys, 16B-4KB
    // geometric values).
    options->mix = WorkloadMix::WriteIntensive();
    options->string_keys = true;
    return true;
  }
  return ParseMix(name, &options->mix);
}

}  // namespace sherman
