#include "workload/workload.h"

#include "util/logging.h"

namespace sherman {

WorkloadGenerator::WorkloadGenerator(const WorkloadOptions& options,
                                     uint64_t seed)
    : options_(options), rng_(seed), value_counter_(seed << 20) {
  SHERMAN_CHECK(options.loaded_keys > 0);
  const double total = options.mix.insert + options.mix.lookup +
                       options.mix.range + options.mix.del;
  SHERMAN_CHECK_MSG(total > 0.999 && total < 1.001,
                    "workload mix must sum to 1 (got %.3f)", total);
  if (options.zipf_theta > 0) {
    zipf_ = std::make_unique<ScrambledZipfianGenerator>(options.loaded_keys,
                                                        options.zipf_theta);
  }
}

uint64_t WorkloadGenerator::NextRank() {
  if (zipf_ != nullptr) return zipf_->Next(rng_);
  return rng_.Uniform(options_.loaded_keys);
}

Op WorkloadGenerator::Next() {
  Op op;
  const double dice = rng_.NextDouble();
  const WorkloadMix& mix = options_.mix;
  const uint64_t rank = NextRank();
  const uint64_t even_key = LoadedKeyFor(rank);

  if (dice < mix.insert) {
    op.type = OpType::kInsert;
    // ~2/3 of inserts update existing keys (§5.1.3); the rest insert the
    // adjacent odd key.
    op.key = rng_.Bernoulli(options_.update_fraction) ? even_key : even_key + 1;
    op.value = ++value_counter_;
  } else if (dice < mix.insert + mix.lookup) {
    op.type = OpType::kLookup;
    op.key = even_key;
  } else if (dice < mix.insert + mix.lookup + mix.range) {
    op.type = OpType::kRangeQuery;
    op.key = even_key;
    op.range_size = options_.range_size;
  } else {
    op.type = OpType::kDelete;
    op.key = even_key;
  }
  return op;
}

bool ParseMix(const std::string& name, WorkloadMix* mix) {
  if (name == "write-only") {
    *mix = WorkloadMix::WriteOnly();
  } else if (name == "write-intensive") {
    *mix = WorkloadMix::WriteIntensive();
  } else if (name == "read-intensive") {
    *mix = WorkloadMix::ReadIntensive();
  } else if (name == "range-only") {
    *mix = WorkloadMix::RangeOnly();
  } else if (name == "range-write") {
    *mix = WorkloadMix::RangeWrite();
  } else {
    return false;
  }
  return true;
}

}  // namespace sherman
