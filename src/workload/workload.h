// YCSB-style workload generation (§5.1.3, Table 3).
//
// Key universe: the tree is bulkloaded with the even keys 2, 4, ..., 2N
// (logical ranks 0..N-1). Insert operations draw a rank from the popularity
// distribution; with probability `update_fraction` (the paper's ~2/3) the
// op targets the existing even key (an update), otherwise the adjacent odd
// key (a fresh insert). This keeps fresh inserts spatially spread instead
// of hammering the rightmost leaf.
#ifndef SHERMAN_WORKLOAD_WORKLOAD_H_
#define SHERMAN_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "util/random.h"

namespace sherman {

enum class OpType : uint8_t { kInsert, kLookup, kRangeQuery, kDelete };

struct WorkloadMix {
  double insert = 0;
  double lookup = 0;
  double range = 0;
  double del = 0;

  // The paper's five mixes (Table 3).
  static WorkloadMix WriteOnly() { return {1.0, 0.0, 0.0, 0.0}; }
  static WorkloadMix WriteIntensive() { return {0.5, 0.5, 0.0, 0.0}; }
  static WorkloadMix ReadIntensive() { return {0.05, 0.95, 0.0, 0.0}; }
  static WorkloadMix RangeOnly() { return {0.0, 0.0, 1.0, 0.0}; }
  static WorkloadMix RangeWrite() { return {0.5, 0.0, 0.5, 0.0}; }
};

struct WorkloadOptions {
  WorkloadMix mix = WorkloadMix::WriteIntensive();
  uint64_t loaded_keys = 1'000'000;  // N entries bulkloaded
  // 0 => uniform popularity; otherwise Zipfian skewness (0.99 = YCSB default).
  double zipf_theta = 0;
  uint32_t range_size = 100;
  double update_fraction = 2.0 / 3.0;

  // Hotspot drift: every `hotspot_drift_ops` operations the popularity
  // mapping rotates by `hotspot_drift_step` ranks, moving the Zipfian hot
  // set to a different region of the key space (0 = static hot set). This
  // exercises epoch re-adaptation in the hybrid router: shards that were
  // hot go cold and vice versa.
  uint64_t hotspot_drift_ops = 0;
  uint64_t hotspot_drift_step = 0;  // 0 => loaded_keys / 8

  // Live-insert tracking (the frozen-Zipfian-hot-set fix): when true
  // (default), every fresh insert this generator emits joins its
  // drawable key space — the popularity universe grows (the Zipfian zeta
  // sum extends incrementally), so recently inserted keys draw follow-up
  // updates/lookups/deletes and can become hot. When false the pre-fix
  // behavior is kept deliberately: the drawn space is frozen over the
  // loaded prefix (the generator asserts every rank stays inside it) and
  // post-load inserts never attract traffic — skewed insert-heavy runs
  // silently degrade toward the loaded keys only.
  bool track_inserts = true;

  // Hotspot popularity (the 99/1 extreme-skew preset bench_rdwc drives):
  // with probability `hotspot_share` an op targets a hot set of
  // `hotspot_keys` loaded keys (0 => 1% of loaded_keys) scattered over
  // the loaded prefix; other ops draw from the regular popularity
  // distribution. 0 disables.
  double hotspot_share = 0;
  uint64_t hotspot_keys = 0;

  // String-key mode (the "ycsb-string" preset): every op additionally
  // carries a byte-string key (and value, for inserts) for varlen trees.
  // The string key is a DETERMINISTIC function of the op's u64 key — a
  // 16-hex-digit FNV scramble plus hash-derived filler up to a per-key
  // length in [string_key_min, string_key_max] — so updates and deletes
  // land on the same record, any client can recompute the key, and the
  // scramble spreads routing prefixes uniformly. Insert VALUE lengths are
  // drawn per op on a geometric ladder over [string_value_min,
  // string_value_max], so updates cross the vlog inline threshold in both
  // directions.
  bool string_keys = false;
  uint32_t string_key_min = 16;  // >= 16 (the hex stem)
  uint32_t string_key_max = 40;
  uint32_t string_value_min = 16;
  uint32_t string_value_max = 4096;

  // Churn mode (space-reclamation benchmarking): when churn_window > 0
  // the generator ignores `mix` and keeps this client's live insert set
  // at exactly churn_window keys — each op inserts the next odd key of a
  // sliding sequence (seed-random start, advancing one rank per insert,
  // wrapping the universe) until the window fills, then alternates
  // deleting the oldest inserted key with inserting a fresh one. FIFO
  // expiry is time-correlated, so the live window sweeps the key space:
  // leaves drain and merge behind it while splits run ahead of it.
  // Overlapping client windows collide on keys; the loser's later delete
  // resolves as NotFound, so the aggregate live count stays pinned. This
  // is the sustained insert+delete-at-fixed-live-count mix bench_churn
  // uses to prove the allocated-bytes plateau.
  uint64_t churn_window = 0;
};

struct Op {
  OpType type = OpType::kLookup;
  uint64_t key = 0;
  uint64_t value = 0;      // for inserts
  uint32_t range_size = 0; // for range queries
  // String-key mode only (empty otherwise): the byte key, and for
  // inserts the byte value.
  std::string skey;
  std::string svalue;
};

// Deterministic per-client stream of operations.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const WorkloadOptions& options, uint64_t seed);

  Op Next();

  // The even tree key for popularity rank r.
  static uint64_t LoadedKeyFor(uint64_t rank) { return 2 * (rank + 1); }

  // The deterministic string key for u64 key `key` (string-key mode):
  // 16 hex digits of an FNV scramble, extended with hash filler to a
  // per-key length in [min_len, max_len]. min_len must be >= 16.
  static std::string StringKeyFor(uint64_t key, uint32_t min_len,
                                  uint32_t max_len);

  const WorkloadOptions& options() const { return options_; }

  // Current rotation of the popularity mapping (see hotspot_drift_ops).
  uint64_t drift_offset() const { return drift_offset_; }

  // The current drawable key-space size: loaded_keys plus (with
  // track_inserts) the fresh keys this generator has inserted so far.
  uint64_t universe() const {
    return options_.loaded_keys + fresh_keys_.size();
  }

  // The tree key for rank r: a loaded even key below loaded_keys, one of
  // this generator's fresh inserts above.
  uint64_t KeyForRank(uint64_t rank) const;

 private:
  uint64_t NextRank();
  // String-key mode: attaches skey (and svalue for inserts) to *op.
  void FillStrings(Op* op);
  // One insert-value length off the geometric ladder.
  uint32_t DrawValueLen();

  WorkloadOptions options_;
  Random rng_;
  std::unique_ptr<ScrambledZipfianGenerator> zipf_;  // null => uniform
  std::vector<uint64_t> fresh_keys_;  // post-load inserts, by extended rank
  uint64_t value_counter_;
  uint64_t drift_offset_ = 0;
  uint64_t ops_since_drift_ = 0;
  std::deque<uint64_t> churn_fifo_;  // churn mode: this client's live keys
  uint64_t churn_cursor_ = 0;        // churn mode: next insert rank
  bool churn_started_ = false;
};

// Parses the mix names used by bench binaries ("write-only",
// "write-intensive", "read-intensive", "range-only", "range-write").
bool ParseMix(const std::string& name, WorkloadMix* mix);

// Same, writing into full WorkloadOptions; additionally accepts
// "hotspot-drift" (write-intensive mix with a rotating Zipfian hot set,
// enabling hotspot_drift_ops if unset), "hotspot" (write-intensive 99/1
// extreme hotspot: 99% of ops on ~1% of the keys, enabling
// hotspot_share if unset — the mix bench_rdwc drives), and "churn"
// (sustained insert+delete at a fixed live-key count, enabling
// churn_window if unset), and "ycsb-string" (write-intensive mix over a
// string keyspace: enables string_keys with the default 16-40 byte keys
// and 16B-4KB geometric values — the varlen tree's YCSB-style preset).
// The mix-only overload rejects these names on purpose: a caller that
// cannot apply the extra options would silently run a mislabeled
// workload.
bool ParseMix(const std::string& name, WorkloadOptions* options);

}  // namespace sherman

#endif  // SHERMAN_WORKLOAD_WORKLOAD_H_
