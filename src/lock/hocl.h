// HoclClient: the hierarchical on-chip lock (§4.3), one instance per
// compute server, shared by its client threads.
//
// Every stage of the design is independently toggleable so the ablations of
// Figures 10, 11 and 16 are real configurations:
//   onchip        — global lock table in NIC on-chip memory vs. host DRAM
//   hierarchical  — acquire a CS-local lock before the remote CAS
//   wait_queue    — FIFO wait queue on local locks vs. local spinning
//   handover      — pass the held global lock to the next local waiter
//                   (bounded by max_handover_depth, default 4)
//
// Unlock() takes the operation's pending write-backs: with command
// combination (§4.5) they are doorbell-batched together with the lock-
// release write (one round trip); without it, each write is issued and
// awaited separately, then the release follows — the behaviour of FG.
#ifndef SHERMAN_LOCK_HOCL_H_
#define SHERMAN_LOCK_HOCL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/stats.h"
#include "lock/local_lock_table.h"
#include "lock/lock_table.h"
#include "rdma/fabric.h"
#include "sim/task.h"

namespace sherman {

struct HoclOptions {
  bool onchip = true;
  bool hierarchical = true;
  bool wait_queue = true;
  bool handover = true;
  uint32_t max_handover_depth = 4;  // MAX_DEPTH in Figure 6
  // Original FG releases with RDMA_FAA; FG+ and Sherman use RDMA_WRITE.
  bool release_with_faa = false;
  // Local spin interval when hierarchical && !wait_queue.
  sim::SimTime local_spin_ns = 500;

  // --- lock leases (crash-fault tolerance) ---
  // Holders stamp the current fabric-wide lease id (the clock quantized
  // by lease_period_ns) into the lock lane's high byte on acquisition; a
  // waiter that fetches a lane whose stamp lags the current lease id by
  // at least lease_expiry_periods concludes the holder crashed, awaits
  // the recovery hook (which resolves the dead client's in-doubt intents
  // and releases its lanes), and then acquires normally. The period must
  // comfortably exceed the longest lock hold (multi-lock merge / flip
  // protocols hold for tens of microseconds; ordinary ops for a few);
  // long holders renew via RenewLease. Disabled automatically under
  // release_with_faa (the arithmetic release cannot carry a stamp).
  bool leases = true;
  sim::SimTime lease_period_ns = 100'000;
  uint32_t lease_expiry_periods = 4;
};

// Returned by Lock(); pass back to Unlock().
struct LockGuard {
  GlobalLockRef ref;
  bool via_handover = false;
};

class HoclClient {
 public:
  // Awaited when a lock waiter observes an expired lease: receives the
  // dead holder's owner tag and must resolve that client's in-doubt
  // intents and release its lanes before returning (see
  // recover::Recoverer). Must be re-entrant-safe: several waiters of the
  // same survivor can observe the same dead tag concurrently.
  using RecoveryHook = std::function<sim::Task<void>(uint16_t dead_tag)>;

  HoclClient(rdma::Fabric* fabric, int cs_id, HoclOptions options);

  HoclClient(const HoclClient&) = delete;
  HoclClient& operator=(const HoclClient&) = delete;

  void set_recovery_hook(RecoveryHook hook) { recovery_hook_ = std::move(hook); }

  // Acquires the exclusive lock guarding `node_addr` (Figure 6, HOCL_Lock).
  sim::Task<LockGuard> Lock(rdma::GlobalAddress node_addr, OpStats* stats);

  // Bounded acquisition for multi-lock protocols (leaf merging): fails
  // with Retry immediately if this CS already holds or contends the
  // local lock, and bounds the global CAS attempts; on failure nothing
  // is held and `*guard` is untouched. Lock() waits forever, which is
  // fine for a single lock but can deadlock an agent holding one lane
  // while waiting on another: the finite lock table hashes distinct
  // nodes onto shared lanes, so two agents' lock SETS can alias into a
  // waits-for cycle no local ordering discipline can rule out.
  // Multi-lock holders use TryLock for every lock after their first and
  // abort their protocol on failure instead.
  //
  // Returns OK (acquired), Retry (live contention; back off and
  // re-resolve), or LeaseSteal: an attempt fetched an EXPIRED lease — the
  // holder is dead and will never release, so the bounded retry loop
  // stops instead of the old unbounded abort/backoff/retry storm.
  // TryLock does NOT drive recovery itself: its callers are multi-lock
  // protocols still holding their primary lock, and recovery must never
  // run under a caller-held lock (it locks the torn nodes with this very
  // protocol). The caller aborts its protocol on LeaseSteal; the dead
  // lane is actually recovered when an unbounded Lock() — which waits
  // holding nothing — lands on it, which any primary op targeting the
  // nodes behind the lane eventually does.
  sim::Task<Status> TryLock(rdma::GlobalAddress node_addr,
                            uint32_t max_attempts, LockGuard* guard,
                            OpStats* stats);

  // Re-stamps the held lock's lane with a fresh lease id (one 2-byte
  // WRITE). Long-running holders (migration passes, recovery itself)
  // call this between protocol phases so their lease never expires under
  // a live client.
  sim::Task<void> RenewLease(const LockGuard& guard, OpStats* stats);

  // Releases the lock (Figure 6, HOCL_Unlock), first applying `write_backs`
  // (all must target the lock's MS if `combine` is set — command
  // combination rides the in-order QP).
  sim::Task<void> Unlock(LockGuard guard,
                         std::vector<rdma::WorkRequest> write_backs,
                         bool combine, OpStats* stats);

  // The current lease stamp (the quantized clock's low byte, never 0 so a
  // stamped lane is distinguishable from the lease-free encoding).
  uint16_t LeaseStampNow() const;
  // Does `lane` (fetched from the GLT) carry an expired lease?
  bool LaneExpired(uint16_t lane) const;

  const HoclOptions& options() const { return options_; }
  uint64_t handovers() const { return handovers_; }
  uint64_t global_cas_attempts() const { return global_cas_attempts_; }
  uint64_t global_cas_failures() const { return global_cas_failures_; }
  uint64_t lease_steals() const { return lease_steals_; }

  // The 16-bit owner tag this CS writes into a lock it owns (low byte of
  // the lane).
  uint16_t OwnerTag() const { return static_cast<uint16_t>(cs_id_) + 1; }

 private:
  // Remote acquisition loop on the GLT (lines 17-19 of Figure 6). With
  // `dead_tag_out` non-null, an observed expired lease stops the loop and
  // reports the dead holder instead of acquiring (the caller drops its
  // local state, drives recovery, and re-enters); with it null the loop
  // never gives up.
  sim::Task<void> AcquireGlobal(const GlobalLockRef& ref, OpStats* stats,
                                uint16_t* dead_tag_out = nullptr);

  // Local-lane helpers shared by Lock's acquisition loop and the bounded
  // TryLock. AcquireLocal returns true when the lane is contended (the
  // caller parks or spins); ReleaseLocal hands the lane to the next local
  // waiter FIFO.
  bool AcquireLocal(LocalLockTable::LocalLock& local);
  void ReleaseLocal(LocalLockTable::LocalLock& local);

  // The full lane value for a fresh acquisition (owner tag + lease stamp).
  uint16_t AcquireLane() const;
  bool LeasesActive() const {
    return options_.leases && !options_.release_with_faa;
  }

  rdma::Fabric* fabric_;
  int cs_id_;
  HoclOptions options_;
  LocalLockTable llt_;
  RecoveryHook recovery_hook_;
  uint64_t handovers_ = 0;
  uint64_t global_cas_attempts_ = 0;
  uint64_t global_cas_failures_ = 0;
  uint64_t lease_steals_ = 0;
};

}  // namespace sherman

#endif  // SHERMAN_LOCK_HOCL_H_
