// HoclClient: the hierarchical on-chip lock (§4.3), one instance per
// compute server, shared by its client threads.
//
// Every stage of the design is independently toggleable so the ablations of
// Figures 10, 11 and 16 are real configurations:
//   onchip        — global lock table in NIC on-chip memory vs. host DRAM
//   hierarchical  — acquire a CS-local lock before the remote CAS
//   wait_queue    — FIFO wait queue on local locks vs. local spinning
//   handover      — pass the held global lock to the next local waiter
//                   (bounded by max_handover_depth, default 4)
//
// Unlock() takes the operation's pending write-backs: with command
// combination (§4.5) they are doorbell-batched together with the lock-
// release write (one round trip); without it, each write is issued and
// awaited separately, then the release follows — the behaviour of FG.
#ifndef SHERMAN_LOCK_HOCL_H_
#define SHERMAN_LOCK_HOCL_H_

#include <cstdint>
#include <vector>

#include "core/stats.h"
#include "lock/local_lock_table.h"
#include "lock/lock_table.h"
#include "rdma/fabric.h"
#include "sim/task.h"

namespace sherman {

struct HoclOptions {
  bool onchip = true;
  bool hierarchical = true;
  bool wait_queue = true;
  bool handover = true;
  uint32_t max_handover_depth = 4;  // MAX_DEPTH in Figure 6
  // Original FG releases with RDMA_FAA; FG+ and Sherman use RDMA_WRITE.
  bool release_with_faa = false;
  // Local spin interval when hierarchical && !wait_queue.
  sim::SimTime local_spin_ns = 500;
};

// Returned by Lock(); pass back to Unlock().
struct LockGuard {
  GlobalLockRef ref;
  bool via_handover = false;
};

class HoclClient {
 public:
  HoclClient(rdma::Fabric* fabric, int cs_id, HoclOptions options);

  HoclClient(const HoclClient&) = delete;
  HoclClient& operator=(const HoclClient&) = delete;

  // Acquires the exclusive lock guarding `node_addr` (Figure 6, HOCL_Lock).
  sim::Task<LockGuard> Lock(rdma::GlobalAddress node_addr, OpStats* stats);

  // Bounded acquisition for multi-lock protocols (leaf merging): fails
  // immediately if this CS already holds or contends the local lock, and
  // bounds the global CAS attempts; on failure nothing is held and
  // `*guard` is untouched. Lock() waits forever, which is fine for a
  // single lock but can deadlock an agent holding one lane while waiting
  // on another: the finite lock table hashes distinct nodes onto shared
  // lanes, so two agents' lock SETS can alias into a waits-for cycle no
  // local ordering discipline can rule out. Multi-lock holders use
  // TryLock for every lock after their first and abort their protocol on
  // failure instead.
  sim::Task<bool> TryLock(rdma::GlobalAddress node_addr, uint32_t max_attempts,
                          LockGuard* guard, OpStats* stats);

  // Releases the lock (Figure 6, HOCL_Unlock), first applying `write_backs`
  // (all must target the lock's MS if `combine` is set — command
  // combination rides the in-order QP).
  sim::Task<void> Unlock(LockGuard guard,
                         std::vector<rdma::WorkRequest> write_backs,
                         bool combine, OpStats* stats);

  const HoclOptions& options() const { return options_; }
  uint64_t handovers() const { return handovers_; }
  uint64_t global_cas_attempts() const { return global_cas_attempts_; }
  uint64_t global_cas_failures() const { return global_cas_failures_; }

 private:
  // Remote acquisition loop on the GLT (lines 17-19 of Figure 6).
  sim::Task<void> AcquireGlobal(const GlobalLockRef& ref, OpStats* stats);

  // The 16-bit value this CS writes into a lock it owns.
  uint64_t OwnerTag() const { return static_cast<uint64_t>(cs_id_) + 1; }

  rdma::Fabric* fabric_;
  int cs_id_;
  HoclOptions options_;
  LocalLockTable llt_;
  uint64_t handovers_ = 0;
  uint64_t global_cas_attempts_ = 0;
  uint64_t global_cas_failures_ = 0;
};

}  // namespace sherman

#endif  // SHERMAN_LOCK_HOCL_H_
