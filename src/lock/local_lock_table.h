// Local lock table (LLT): the compute-server half of HOCL (§4.3).
//
// Each CS keeps one local lock per (MS, GLT index). A thread must hold the
// local lock before issuing the remote CAS for the global lock, so
// conflicting threads of the same CS queue locally instead of burning
// remote retries. Each local lock carries a FIFO wait queue (first-come-
// first-served fairness) and a handover depth counter (Figure 6).
#ifndef SHERMAN_LOCK_LOCAL_LOCK_TABLE_H_
#define SHERMAN_LOCK_LOCAL_LOCK_TABLE_H_

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "fault/crash_point.h"
#include "sim/task.h"

namespace sherman {

class LocalLockTable {
 public:
  // A parked waiter. `handover == true` when woken means the global lock
  // was handed over and must not be re-acquired remotely.
  struct Waiter {
    bool handover = false;
    sim::OneShot signal;
  };

  LocalLockTable() = default;
  LocalLockTable(const LocalLockTable&) = delete;
  LocalLockTable& operator=(const LocalLockTable&) = delete;

  // Crash hygiene: a waiter still parked at destruction belongs to a dead
  // client (its local holder froze and will never wake it). Hand the
  // parked frames to the fault graveyard so they stay reachable — they
  // are never resumed, and destroying them here would double-free their
  // frames through the parents that own them.
  ~LocalLockTable() {
    for (auto& [key, lock] : locks_) {
      for (Waiter* w : lock.wait_queue) {
        fault::Injector().Bury(w->signal.DetachWaiter());
      }
    }
  }

  struct LocalLock {
    bool held = false;
    uint32_t handover_depth = 0;
    // Lease stamp currently written into the remote lane (leases on): a
    // handover keeps the global lock without remote traffic, so the
    // handing-over Unlock re-stamps the lane when this has gone stale —
    // otherwise a long local handover chain could age the stamp past
    // expiry and get a LIVE holder's lock stolen.
    uint16_t lane_stamp = 0;
    std::deque<Waiter*> wait_queue;
  };

  // The local lock for GLT slot `index` on memory server `ms`. Lazily
  // created: the paper's flat n-MB array is modeled sparsely since only
  // touched locks matter.
  LocalLock& Get(uint16_t ms, uint32_t index) {
    return locks_[Key(ms, index)];
  }

  size_t touched() const { return locks_.size(); }

 private:
  static uint64_t Key(uint16_t ms, uint32_t index) {
    return (static_cast<uint64_t>(ms) << 32) | index;
  }

  std::unordered_map<uint64_t, LocalLock> locks_;
};

}  // namespace sherman

#endif  // SHERMAN_LOCK_LOCAL_LOCK_TABLE_H_
