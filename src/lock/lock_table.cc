#include "lock/lock_table.h"

namespace sherman {

uint32_t LockIndexFor(rdma::GlobalAddress node_addr) {
  // SplitMix64 finalizer: cheap and well-distributed.
  uint64_t z = node_addr.offset + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return static_cast<uint32_t>(z % kLocksPerMs);
}

GlobalLockRef LockFor(rdma::GlobalAddress node_addr, bool onchip) {
  GlobalLockRef ref;
  ref.ms = node_addr.node;
  ref.index = LockIndexFor(node_addr);
  ref.space = onchip ? rdma::MemorySpace::kDevice : rdma::MemorySpace::kHost;
  return ref;
}

}  // namespace sherman
