#include "lock/hocl.h"

#include <utility>

#include "obs/trace.h"
#include "sanitizer/dmsan.h"
#include "util/logging.h"

namespace sherman {

namespace {
// DMSan feed: the acquire CAS's outcome is unknown at post time, so
// successful acquisitions are reported explicitly at completion — the
// shadow-held window is then a strict subset of the actual held window.
void DmsanLockAcquired(rdma::Fabric* fabric, int cs_id,
                       const GlobalLockRef& ref, uint16_t lane_value) {
  if (!dmsan::Active()) return;
  if (dmsan::Checker* c = dmsan::Find(&fabric->simulator())) {
    c->OnLockAcquired(cs_id, ref, lane_value);
  }
}

void DmsanLockReleased(rdma::Fabric* fabric, int cs_id,
                       const GlobalLockRef& ref) {
  if (!dmsan::Active()) return;
  if (dmsan::Checker* c = dmsan::Find(&fabric->simulator())) {
    c->OnLockReleased(cs_id, ref);
  }
}
}  // namespace

HoclClient::HoclClient(rdma::Fabric* fabric, int cs_id, HoclOptions options)
    : fabric_(fabric), cs_id_(cs_id), options_(options) {
  // The lease encoding keeps the owner tag in the lane's low byte.
  SHERMAN_CHECK_MSG(cs_id_ >= 0 && cs_id_ < 0xff,
                    "owner tag must fit the lane's owner byte");
}

uint16_t HoclClient::LeaseStampNow() const {
  // Quantized clock, folded into 1..255 (0 is the lease-free encoding).
  const uint64_t period =
      static_cast<uint64_t>(fabric_->simulator().now()) /
      static_cast<uint64_t>(options_.lease_period_ns);
  return static_cast<uint16_t>(period % 255) + 1;
}

bool HoclClient::LaneExpired(uint16_t lane) const {
  const uint16_t stamp = LockLaneStamp(lane);
  if (LockLaneOwner(lane) == 0 || stamp == 0) return false;  // free / no lease
  const uint16_t now = LeaseStampNow();
  // Wrap-aware age over the 255-value stamp ring. Ages in the far half are
  // treated as fresh (alias of a very old stamp only delays detection by a
  // few periods — the waiter keeps polling and the age keeps growing).
  const uint16_t age =
      static_cast<uint16_t>((now - stamp + 255) % 255);
  return age >= options_.lease_expiry_periods && age <= 127;
}

uint16_t HoclClient::AcquireLane() const {
  return MakeLockLane(OwnerTag(), LeasesActive() ? LeaseStampNow() : 0);
}

sim::Task<void> HoclClient::AcquireGlobal(const GlobalLockRef& ref,
                                          OpStats* stats,
                                          uint16_t* dead_tag_out) {
  rdma::Qp& qp = fabric_->qp(cs_id_, ref.ms);
  const int shift = ref.lane_shift();
  if (dead_tag_out != nullptr) *dead_tag_out = 0;
  while (true) {
    uint64_t fetched = 0;
    global_cas_attempts_++;
    const uint16_t lane_value = AcquireLane();
    auto wr = rdma::WorkRequest::MaskedCas(
        ref.word_address(), 0,
        static_cast<uint64_t>(lane_value) << shift, ref.lane_mask(),
        &fetched, ref.space);
    wr.origin = rdma::kWrOriginLock;
    rdma::RdmaResult r = co_await qp.Post(wr);
    if (stats != nullptr) stats->round_trips++;
    SHERMAN_CHECK(r.status.ok());
    if (r.cas_success) {
      if (options_.hierarchical) {
        llt_.Get(ref.ms, ref.index).lane_stamp = LockLaneStamp(lane_value);
      }
      DmsanLockAcquired(fabric_, cs_id_, ref, lane_value);
      co_return;
    }
    global_cas_failures_++;
    if (stats != nullptr) stats->lock_retries++;
    // Crash detection: a fetched lane whose lease stamp has expired marks
    // a dead holder. Report it to the caller instead of recovering inline:
    // Lock() must drop its CS-local lane first, or recovery — which runs
    // on this same survivor and locks nodes with the ordinary protocol —
    // could need exactly the local lane this waiter is parked on.
    const uint16_t lane =
        static_cast<uint16_t>((fetched & ref.lane_mask()) >> shift);
    if (dead_tag_out != nullptr && LeasesActive() &&
        recovery_hook_ != nullptr && LockLaneOwner(lane) != OwnerTag() &&
        LaneExpired(lane)) {
      *dead_tag_out = LockLaneOwner(lane);
      co_return;
    }
  }
}

bool HoclClient::AcquireLocal(LocalLockTable::LocalLock& local) {
  if (!local.held) {
    local.held = true;
    return false;
  }
  return true;  // caller must park (wait queue) or spin
}

void HoclClient::ReleaseLocal(LocalLockTable::LocalLock& local) {
  // Same discipline as Unlock's tail: waiters may have queued meanwhile.
  local.handover_depth = 0;
  local.held = false;
  if (options_.wait_queue && !local.wait_queue.empty()) {
    LocalLockTable::Waiter* w = local.wait_queue.front();
    local.wait_queue.pop_front();
    local.held = true;  // transfer local ownership FIFO
    w->handover = false;
    w->signal.Fire();
  }
}

sim::Task<LockGuard> HoclClient::Lock(rdma::GlobalAddress node_addr,
                                      OpStats* stats) {
  SHERMAN_TEVENT(stats != nullptr ? stats->trace : nullptr, "lock.acquire",
                 node_addr.node);
  LockGuard guard;
  guard.ref = LockFor(node_addr, options_.onchip);

  if (!options_.hierarchical) {
    // FG-style: hammer the remote lock directly. A dead holder's expired
    // lease triggers recovery (nothing local is held here), then the CAS
    // loop re-enters against the freed lane.
    while (true) {
      uint16_t dead_tag = 0;
      co_await AcquireGlobal(guard.ref, stats, &dead_tag);
      if (dead_tag == 0) co_return guard;
      lease_steals_++;
      SHERMAN_TINSTANT(stats != nullptr ? stats->trace : nullptr,
                       "lock.lease_steal", dead_tag);
      co_await recovery_hook_(dead_tag);
    }
  }

  // Hierarchical path: serialize conflicting threads of this CS locally
  // before touching the network (lines 6-16 of Figure 6).
  while (true) {
    LocalLockTable::LocalLock& local = llt_.Get(guard.ref.ms, guard.ref.index);
    if (AcquireLocal(local)) {
      if (options_.wait_queue) {
        LocalLockTable::Waiter waiter;
        local.wait_queue.push_back(&waiter);
        co_await waiter.signal;  // woken by Unlock, holding the local lock
        if (waiter.handover) {
          guard.via_handover = true;
          handovers_++;
          if (stats != nullptr) stats->used_handover = true;
          SHERMAN_TINSTANT(stats != nullptr ? stats->trace : nullptr,
                           "lock.handover");
          co_return guard;  // global lock inherited: no remote access needed
        }
      } else {
        // No wait queue: unfair local spinning.
        while (local.held) {
          co_await fabric_->simulator().Delay(options_.local_spin_ns);
        }
        local.held = true;
      }
    }

    uint16_t dead_tag = 0;
    co_await AcquireGlobal(guard.ref, stats, &dead_tag);
    if (dead_tag == 0) co_return guard;

    // The holder is dead. Drop the local lane BEFORE recovering: recovery
    // locks the torn nodes with this very protocol, and parking on a
    // local lane while the recoverer needs it would deadlock this CS
    // against itself. After recovery the full local+global acquisition
    // re-runs (another local thread may legitimately have won meanwhile).
    ReleaseLocal(local);
    lease_steals_++;
    SHERMAN_TINSTANT(stats != nullptr ? stats->trace : nullptr,
                     "lock.lease_steal", dead_tag);
    co_await recovery_hook_(dead_tag);
  }
}

sim::Task<Status> HoclClient::TryLock(rdma::GlobalAddress node_addr,
                                      uint32_t max_attempts, LockGuard* guard,
                                      OpStats* stats) {
  SHERMAN_TEVENT(stats != nullptr ? stats->trace : nullptr, "lock.try",
                 node_addr.node, max_attempts);
  LockGuard g;
  g.ref = LockFor(node_addr, options_.onchip);

  LocalLockTable::LocalLock* local = nullptr;
  if (options_.hierarchical) {
    local = &llt_.Get(g.ref.ms, g.ref.index);
    // A local holder/contender means waiting — exactly what a bounded
    // acquire must not do. The caller's protocol is opportunistic.
    if (local->held) co_return Status::Retry("local lane contended");
    local->held = true;
  }

  rdma::Qp& qp = fabric_->qp(cs_id_, g.ref.ms);
  const int shift = g.ref.lane_shift();
  bool acquired = false;
  uint16_t expired_lane = 0;  // last fetched lane with a dead holder
  for (uint32_t i = 0; i < max_attempts; i++) {
    uint64_t fetched = 0;
    global_cas_attempts_++;
    const uint16_t lane_value = AcquireLane();
    auto wr = rdma::WorkRequest::MaskedCas(
        g.ref.word_address(), 0,
        static_cast<uint64_t>(lane_value) << shift, g.ref.lane_mask(),
        &fetched, g.ref.space);
    wr.origin = rdma::kWrOriginLock;
    rdma::RdmaResult r = co_await qp.Post(wr);
    if (stats != nullptr) stats->round_trips++;
    SHERMAN_CHECK(r.status.ok());
    if (r.cas_success) {
      if (local != nullptr) local->lane_stamp = LockLaneStamp(lane_value);
      DmsanLockAcquired(fabric_, cs_id_, g.ref, lane_value);
      acquired = true;
      break;
    }
    global_cas_failures_++;
    if (stats != nullptr) stats->lock_retries++;
    const uint16_t lane =
        static_cast<uint16_t>((fetched & g.ref.lane_mask()) >> shift);
    if (LeasesActive() && LockLaneOwner(lane) != OwnerTag() &&
        LaneExpired(lane)) {
      // The holder is dead: no number of bounded attempts will ever see
      // this lane released. Stop the retry storm here rather than letting
      // the caller abort/back-off/re-abort forever.
      expired_lane = lane;
      break;
    }
  }

  if (!acquired && local != nullptr) ReleaseLocal(*local);
  if (acquired) {
    *guard = g;
    co_return Status::OK();
  }
  if (expired_lane != 0) {
    // Surface the dead holder WITHOUT recovering inline (and without
    // counting a steal — nothing was stolen): TryLock callers are
    // multi-lock protocols still holding their primary lock, and
    // recovery (which locks torn nodes with the ordinary protocol) must
    // never run under a caller-held lock. The caller aborts and releases;
    // recovery happens when an unbounded Lock() — which holds nothing
    // while it waits — lands on one of the dead client's lanes, which
    // any primary op targeting the nodes behind this lane will do.
    co_return Status::LeaseSteal("bounded acquire found a dead holder");
  }
  co_return Status::Retry("global lane contended");
}

sim::Task<void> HoclClient::RenewLease(const LockGuard& guard, OpStats* stats) {
  if (!LeasesActive()) co_return;
  const GlobalLockRef& ref = guard.ref;
  // The lane is exclusively ours; a plain 2-byte WRITE re-stamps it. The
  // payload is snapshotted when the WR is posted, so a frame-local is
  // fine. Skipped when the stamp is still current, so long protocols can
  // renew at every phase for free except when a period boundary passed.
  const uint16_t lane = MakeLockLane(OwnerTag(), LeaseStampNow());
  if (options_.hierarchical) {
    LocalLockTable::LocalLock& local = llt_.Get(ref.ms, ref.index);
    if (local.lane_stamp == LockLaneStamp(lane)) co_return;
    local.lane_stamp = LockLaneStamp(lane);
  }
  SHERMAN_TINSTANT(stats != nullptr ? stats->trace : nullptr, "lock.renew");
  rdma::WorkRequest renew = rdma::WorkRequest::Write(
      ref.lane_address(), &lane, sizeof(lane), ref.space);
  renew.origin = rdma::kWrOriginLock;
  rdma::RdmaResult r = co_await fabric_->qp(cs_id_, ref.ms).Post(renew);
  if (stats != nullptr) stats->round_trips++;
  SHERMAN_CHECK(r.status.ok());
}

sim::Task<void> HoclClient::Unlock(LockGuard guard,
                                   std::vector<rdma::WorkRequest> write_backs,
                                   bool combine, OpStats* stats) {
  SHERMAN_TEVENT(stats != nullptr ? stats->trace : nullptr, "lock.release",
                 write_backs.size());
  const GlobalLockRef& ref = guard.ref;
  rdma::Qp& qp = fabric_->qp(cs_id_, ref.ms);

  LocalLockTable::LocalLock* local = nullptr;
  LocalLockTable::Waiter* next = nullptr;
  uint16_t renew_lane = 0;  // frame-local: posted before this frame returns
  if (options_.hierarchical) {
    local = &llt_.Get(ref.ms, ref.index);
    SHERMAN_CHECK(local->held);
    if (options_.wait_queue && !local->wait_queue.empty()) {
      next = local->wait_queue.front();
    }
  }

  const bool hand_over = options_.handover && next != nullptr &&
                         local->handover_depth < options_.max_handover_depth;

  // Build the release write: zero the 16-bit lane (or FAA back, for the
  // original FG configuration).
  static const uint16_t kZero = 0;
  rdma::WorkRequest release =
      options_.release_with_faa
          ? rdma::WorkRequest::Faa(
                ref.word_address(),
                static_cast<uint64_t>(-static_cast<uint64_t>(OwnerTag()))
                    << ref.lane_shift(),
                nullptr, ref.space)
          : rdma::WorkRequest::Write(ref.lane_address(), &kZero,
                                     sizeof(kZero), ref.space);
  release.origin = rdma::kWrOriginLock;

  if (hand_over) {
    // Keep the global lock; flush pending write-backs, then wake the next
    // local waiter with the lock in hand. Posting before waking keeps QP
    // order: the successor's reads execute after these writes.
    local->handover_depth++;
    // A handover chain keeps the lane stamped with the FIRST acquirer's
    // lease. Re-stamp when the stamp has gone stale (crossed a lease
    // period) so a long chain can never age a LIVE holder's lease into
    // an expiry — the 2-byte write rides the write-back batch (or is the
    // batch, at most once per period per lane).
    if (LeasesActive() && local->lane_stamp != 0 &&
        local->lane_stamp != LeaseStampNow()) {
      local->lane_stamp = LeaseStampNow();
      renew_lane = MakeLockLane(OwnerTag(), local->lane_stamp);
      rdma::WorkRequest restamp = rdma::WorkRequest::Write(
          ref.lane_address(), &renew_lane, sizeof(renew_lane), ref.space);
      restamp.origin = rdma::kWrOriginLock;
      write_backs.push_back(restamp);
    }
    if (!write_backs.empty()) {
      if (combine) {
        rdma::RdmaResult r = co_await qp.PostBatch(std::move(write_backs));
        if (stats != nullptr) stats->round_trips++;
        SHERMAN_CHECK(r.status.ok());
      } else {
        for (auto& wr : write_backs) {
          rdma::RdmaResult r = co_await qp.Post(wr);
          if (stats != nullptr) stats->round_trips++;
          SHERMAN_CHECK(r.status.ok());
        }
      }
    }
    LocalLockTable::Waiter* w = local->wait_queue.front();
    local->wait_queue.pop_front();
    w->handover = true;
    w->signal.Fire();
    co_return;
  }

  // Full release: write-backs followed by the global release, combined into
  // one doorbell batch when command combination is on (§4.5).
  if (combine) {
    write_backs.push_back(release);
    rdma::RdmaResult r = co_await qp.PostBatch(std::move(write_backs));
    if (stats != nullptr) stats->round_trips++;
    SHERMAN_CHECK(r.status.ok());
  } else {
    for (auto& wr : write_backs) {
      rdma::RdmaResult r = co_await qp.Post(wr);
      if (stats != nullptr) stats->round_trips++;
      SHERMAN_CHECK(r.status.ok());
    }
    rdma::RdmaResult r = co_await qp.Post(release);
    if (stats != nullptr) stats->round_trips++;
    SHERMAN_CHECK(r.status.ok());
  }

  // The FAA release is an arithmetic delta, not a lane image, so DMSan
  // cannot decode it from the posted WR; clear the shadow explicitly.
  if (options_.release_with_faa) DmsanLockReleased(fabric_, cs_id_, ref);

  if (options_.hierarchical) {
    local->handover_depth = 0;
    local->held = false;
    if (options_.wait_queue && !local->wait_queue.empty()) {
      // Wake the successor; it re-acquires local + global itself.
      LocalLockTable::Waiter* w = local->wait_queue.front();
      local->wait_queue.pop_front();
      local->held = true;  // transfer local ownership FIFO
      w->handover = false;
      w->signal.Fire();
    }
  }
  co_return;
}

}  // namespace sherman
