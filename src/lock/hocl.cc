#include "lock/hocl.h"

#include <utility>

#include "util/logging.h"

namespace sherman {

HoclClient::HoclClient(rdma::Fabric* fabric, int cs_id, HoclOptions options)
    : fabric_(fabric), cs_id_(cs_id), options_(options) {}

sim::Task<void> HoclClient::AcquireGlobal(const GlobalLockRef& ref,
                                          OpStats* stats) {
  rdma::Qp& qp = fabric_->qp(cs_id_, ref.ms);
  const int shift = ref.lane_shift();
  while (true) {
    uint64_t fetched = 0;
    global_cas_attempts_++;
    auto wr = rdma::WorkRequest::MaskedCas(ref.word_address(), 0,
                                           OwnerTag() << shift, ref.lane_mask(),
                                           &fetched, ref.space);
    rdma::RdmaResult r = co_await qp.Post(wr);
    if (stats != nullptr) stats->round_trips++;
    SHERMAN_CHECK(r.status.ok());
    if (r.cas_success) co_return;
    global_cas_failures_++;
    if (stats != nullptr) stats->lock_retries++;
  }
}

sim::Task<LockGuard> HoclClient::Lock(rdma::GlobalAddress node_addr,
                                      OpStats* stats) {
  LockGuard guard;
  guard.ref = LockFor(node_addr, options_.onchip);

  if (!options_.hierarchical) {
    // FG-style: hammer the remote lock directly.
    co_await AcquireGlobal(guard.ref, stats);
    co_return guard;
  }

  // Hierarchical path: serialize conflicting threads of this CS locally
  // before touching the network (lines 6-16 of Figure 6).
  LocalLockTable::LocalLock& local = llt_.Get(guard.ref.ms, guard.ref.index);
  if (!local.held) {
    local.held = true;
  } else if (options_.wait_queue) {
    LocalLockTable::Waiter waiter;
    local.wait_queue.push_back(&waiter);
    co_await waiter.signal;  // woken by Unlock, already holding the local lock
    if (waiter.handover) {
      guard.via_handover = true;
      handovers_++;
      if (stats != nullptr) stats->used_handover = true;
      co_return guard;  // global lock inherited: no remote access needed
    }
  } else {
    // No wait queue: unfair local spinning.
    while (local.held) {
      co_await fabric_->simulator().Delay(options_.local_spin_ns);
    }
    local.held = true;
  }

  co_await AcquireGlobal(guard.ref, stats);
  co_return guard;
}

sim::Task<bool> HoclClient::TryLock(rdma::GlobalAddress node_addr,
                                    uint32_t max_attempts, LockGuard* guard,
                                    OpStats* stats) {
  LockGuard g;
  g.ref = LockFor(node_addr, options_.onchip);

  LocalLockTable::LocalLock* local = nullptr;
  if (options_.hierarchical) {
    local = &llt_.Get(g.ref.ms, g.ref.index);
    // A local holder/contender means waiting — exactly what a bounded
    // acquire must not do. The caller's protocol is opportunistic.
    if (local->held) co_return false;
    local->held = true;
  }

  rdma::Qp& qp = fabric_->qp(cs_id_, g.ref.ms);
  const int shift = g.ref.lane_shift();
  bool acquired = false;
  for (uint32_t i = 0; i < max_attempts; i++) {
    uint64_t fetched = 0;
    global_cas_attempts_++;
    auto wr = rdma::WorkRequest::MaskedCas(g.ref.word_address(), 0,
                                           OwnerTag() << shift,
                                           g.ref.lane_mask(), &fetched,
                                           g.ref.space);
    rdma::RdmaResult r = co_await qp.Post(wr);
    if (stats != nullptr) stats->round_trips++;
    SHERMAN_CHECK(r.status.ok());
    if (r.cas_success) {
      acquired = true;
      break;
    }
    global_cas_failures_++;
    if (stats != nullptr) stats->lock_retries++;
  }

  if (!acquired && local != nullptr) {
    // Release the local lock the same way Unlock's tail does: waiters may
    // have queued behind us while we were CASing.
    local->handover_depth = 0;
    local->held = false;
    if (options_.wait_queue && !local->wait_queue.empty()) {
      LocalLockTable::Waiter* w = local->wait_queue.front();
      local->wait_queue.pop_front();
      local->held = true;  // transfer local ownership FIFO
      w->handover = false;
      w->signal.Fire();
    }
  }
  if (acquired) *guard = g;
  co_return acquired;
}

sim::Task<void> HoclClient::Unlock(LockGuard guard,
                                   std::vector<rdma::WorkRequest> write_backs,
                                   bool combine, OpStats* stats) {
  const GlobalLockRef& ref = guard.ref;
  rdma::Qp& qp = fabric_->qp(cs_id_, ref.ms);

  LocalLockTable::LocalLock* local = nullptr;
  LocalLockTable::Waiter* next = nullptr;
  if (options_.hierarchical) {
    local = &llt_.Get(ref.ms, ref.index);
    SHERMAN_CHECK(local->held);
    if (options_.wait_queue && !local->wait_queue.empty()) {
      next = local->wait_queue.front();
    }
  }

  const bool hand_over = options_.handover && next != nullptr &&
                         local->handover_depth < options_.max_handover_depth;

  // Build the release write: zero the 16-bit lane (or FAA back, for the
  // original FG configuration).
  static const uint16_t kZero = 0;
  rdma::WorkRequest release =
      options_.release_with_faa
          ? rdma::WorkRequest::Faa(ref.word_address(),
                                   static_cast<uint64_t>(-(OwnerTag()))
                                       << ref.lane_shift(),
                                   nullptr, ref.space)
          : rdma::WorkRequest::Write(ref.lane_address(), &kZero,
                                     sizeof(kZero), ref.space);

  if (hand_over) {
    // Keep the global lock; flush pending write-backs, then wake the next
    // local waiter with the lock in hand. Posting before waking keeps QP
    // order: the successor's reads execute after these writes.
    local->handover_depth++;
    if (!write_backs.empty()) {
      if (combine) {
        rdma::RdmaResult r = co_await qp.PostBatch(std::move(write_backs));
        if (stats != nullptr) stats->round_trips++;
        SHERMAN_CHECK(r.status.ok());
      } else {
        for (auto& wr : write_backs) {
          rdma::RdmaResult r = co_await qp.Post(wr);
          if (stats != nullptr) stats->round_trips++;
          SHERMAN_CHECK(r.status.ok());
        }
      }
    }
    LocalLockTable::Waiter* w = local->wait_queue.front();
    local->wait_queue.pop_front();
    w->handover = true;
    w->signal.Fire();
    co_return;
  }

  // Full release: write-backs followed by the global release, combined into
  // one doorbell batch when command combination is on (§4.5).
  if (combine) {
    write_backs.push_back(release);
    rdma::RdmaResult r = co_await qp.PostBatch(std::move(write_backs));
    if (stats != nullptr) stats->round_trips++;
    SHERMAN_CHECK(r.status.ok());
  } else {
    for (auto& wr : write_backs) {
      rdma::RdmaResult r = co_await qp.Post(wr);
      if (stats != nullptr) stats->round_trips++;
      SHERMAN_CHECK(r.status.ok());
    }
    rdma::RdmaResult r = co_await qp.Post(release);
    if (stats != nullptr) stats->round_trips++;
    SHERMAN_CHECK(r.status.ok());
  }

  if (options_.hierarchical) {
    local->handover_depth = 0;
    local->held = false;
    if (options_.wait_queue && !local->wait_queue.empty()) {
      // Wake the successor; it re-acquires local + global itself.
      LocalLockTable::Waiter* w = local->wait_queue.front();
      local->wait_queue.pop_front();
      local->held = true;  // transfer local ownership FIFO
      w->handover = false;
      w->signal.Fire();
    }
  }
  co_return;
}

}  // namespace sherman
