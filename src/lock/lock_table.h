// Global lock table (GLT) addressing (§4.3).
//
// Each memory server owns an array of 131072 16-bit exclusive locks —
// enough to fill the NIC's 256 KB on-chip memory. A tree node is guarded by
// the lock whose index is a hash of the node's offset, on the same MS as
// the node. Locks are acquired with a *masked* compare-and-swap selecting
// the 16-bit lane inside the aligned 64-bit word, and released by writing
// zero over the lane with a plain RDMA_WRITE.
#ifndef SHERMAN_LOCK_LOCK_TABLE_H_
#define SHERMAN_LOCK_LOCK_TABLE_H_

#include <cstdint>

#include "alloc/layout.h"
#include "rdma/global_address.h"
#include "rdma/verbs.h"

namespace sherman {

struct GlobalLockRef {
  uint16_t ms = 0;           // memory server owning the lock (== node's MS)
  uint32_t index = 0;        // lock index within the GLT
  rdma::MemorySpace space = rdma::MemorySpace::kDevice;

  // Byte offset of the 16-bit lock within its region.
  uint64_t lane_offset() const {
    const uint64_t base =
        space == rdma::MemorySpace::kDevice ? 0 : kHostGltOffset;
    return base + static_cast<uint64_t>(index) * kLockBytes;
  }
  // Offset of the aligned 64-bit word containing the lane (CAS target).
  uint64_t word_offset() const { return lane_offset() & ~uint64_t{7}; }
  // Bit shift of the lane inside the word.
  int lane_shift() const {
    return static_cast<int>((lane_offset() & 7) * 8);
  }
  uint64_t lane_mask() const { return uint64_t{0xffff} << lane_shift(); }

  rdma::GlobalAddress word_address() const {
    return rdma::GlobalAddress(ms, word_offset());
  }
  rdma::GlobalAddress lane_address() const {
    return rdma::GlobalAddress(ms, lane_offset());
  }
};

// --- lock lane encoding (crash-fault tolerance) ----------------------------
//
// A held 16-bit lane carries the owner tag (cs_id + 1, low byte) and a
// LEASE STAMP (high byte): the fabric-wide lease id, quantized from the
// (loosely synchronized) clock, at acquisition/renewal time. A waiter that
// observes a stamp more than lease_expiry_periods behind the current lease
// id concludes the holder crashed, triggers recovery of the protected
// node(s), and steals the lane. Stamp 0 with the lease machinery off (or
// the FG FAA-release configuration, whose arithmetic release cannot carry
// a stamp) reproduces the original lease-free lock word.
inline constexpr uint16_t kLockOwnerMask = 0x00ff;

inline constexpr uint16_t LockLaneOwner(uint16_t lane) {
  return lane & kLockOwnerMask;
}
inline constexpr uint16_t LockLaneStamp(uint16_t lane) { return lane >> 8; }
inline constexpr uint16_t MakeLockLane(uint16_t owner, uint16_t stamp) {
  return static_cast<uint16_t>((stamp << 8) | (owner & kLockOwnerMask));
}

// Maps a tree-node address to the lock guarding it (line 5 of Figure 6).
// Distinct nodes may collide on one lock; that false sharing is inherent to
// the design and harmless for correctness.
GlobalLockRef LockFor(rdma::GlobalAddress node_addr, bool onchip);

// Hash used by LockFor; exposed for tests.
uint32_t LockIndexFor(rdma::GlobalAddress node_addr);

}  // namespace sherman

#endif  // SHERMAN_LOCK_LOCK_TABLE_H_
