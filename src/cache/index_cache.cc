#include "cache/index_cache.h"

#include <algorithm>

#include "util/logging.h"

namespace sherman {

IndexCache::IndexCache(uint64_t capacity_bytes, uint32_t node_bytes,
                       uint64_t seed)
    : capacity_bytes_(capacity_bytes),
      // A healthy tree has few level>=2 nodes, but stale entries pile up
      // across splits/root moves; give them a bounded side budget instead
      // of the historical "never charged, never evicted".
      upper_capacity_bytes_(
          capacity_bytes == 0
              ? 0
              : std::max<uint64_t>(capacity_bytes / 4,
                                   16ull * node_bytes)),
      node_bytes_(node_bytes),
      rng_(seed) {}

IndexCache::~IndexCache() = default;

const ParsedInternal* IndexCache::LookupLevel1(Key key) {
  uint64_t found_lo = 0;
  std::unique_ptr<Entry>* slot = level1_.FindLessOrEqual(key, &found_lo);
  if (slot != nullptr) {
    Entry* e = slot->get();
    if (key >= e->node.lo && key < e->node.hi) {
      e->last_used = ++tick_;
      stats_.hits++;
      return &e->node;
    }
  }
  stats_.misses++;
  return nullptr;
}

void IndexCache::Insert(const ParsedInternal& node) {
  if (node.level != 1) {
    std::map<Key, UpperEntry>& nodes = upper_[node.level];
    auto [it, inserted] = nodes.try_emplace(node.lo);
    it->second.node = node;
    it->second.last_used = ++tick_;
    if (inserted) {
      upper_count_++;
      upper_bytes_ += node_bytes_;
      EvictUpperIfNeeded();
    }
    return;
  }
  uint64_t found_lo = 0;
  std::unique_ptr<Entry>* slot = level1_.FindLessOrEqual(node.lo, &found_lo);
  if (slot != nullptr && found_lo == node.lo) {
    // Refresh in place.
    (*slot)->node = node;
    (*slot)->last_used = ++tick_;
    return;
  }
  auto entry = std::make_unique<Entry>();
  entry->node = node;
  entry->last_used = ++tick_;
  entry->pool_index = pool_.size();
  pool_.push_back(entry.get());
  level1_.Insert(node.lo, std::move(entry));
  bytes_used_ += node_bytes_;
  EvictIfNeeded();
}

const ParsedInternal* IndexCache::LookupUpper(Key key) {
  // Deepest (smallest level) upper node covering key.
  for (auto& [level, nodes] : upper_) {
    auto it = nodes.upper_bound(key);
    if (it == nodes.begin()) continue;
    --it;
    UpperEntry& e = it->second;
    if (key >= e.node.lo && key < e.node.hi) {
      e.last_used = ++tick_;
      stats_.upper_hits++;
      return &e.node;
    }
  }
  stats_.upper_misses++;
  return nullptr;
}

void IndexCache::Invalidate(Key key, rdma::GlobalAddress addr) {
  uint64_t found_lo = 0;
  std::unique_ptr<Entry>* slot = level1_.FindLessOrEqual(key, &found_lo);
  if (slot != nullptr) {
    Entry* e = slot->get();
    if (e->node.self == addr && key >= e->node.lo && key < e->node.hi) {
      stats_.invalidations++;
      RemoveEntry(e);
      return;
    }
  }
  for (auto& [level, nodes] : upper_) {
    auto it = nodes.upper_bound(key);
    if (it == nodes.begin()) continue;
    --it;
    const ParsedInternal& node = it->second.node;
    if (node.self == addr && key >= node.lo && key < node.hi) {
      stats_.invalidations++;
      nodes.erase(it);
      upper_count_--;
      upper_bytes_ -= node_bytes_;
      return;
    }
  }
}

void IndexCache::InvalidateLevel1Covering(Key key) {
  uint64_t found_lo = 0;
  std::unique_ptr<Entry>* slot = level1_.FindLessOrEqual(key, &found_lo);
  if (slot != nullptr) {
    Entry* e = slot->get();
    if (key >= e->node.lo && key < e->node.hi) {
      stats_.invalidations++;
      RemoveEntry(e);
    }
  }
}

void IndexCache::InvalidateUpperCovering(Key key, rdma::GlobalAddress child) {
  for (auto& [level, nodes] : upper_) {
    auto it = nodes.upper_bound(key);
    if (it == nodes.begin()) continue;
    --it;
    const ParsedInternal& node = it->second.node;
    if (key >= node.lo && key < node.hi && node.ChildFor(key) == child) {
      stats_.invalidations++;
      nodes.erase(it);
      upper_count_--;
      upper_bytes_ -= node_bytes_;
    }
  }
}

void IndexCache::InvalidateKeyRange(Key lo, Key hi) {
  std::vector<Entry*> victims;
  for (Entry* e : pool_) {
    if (e->node.lo < hi && e->node.hi > lo) victims.push_back(e);
  }
  for (Entry* e : victims) {
    stats_.invalidations++;
    RemoveEntry(e);
  }
}

void IndexCache::Clear() {
  while (!pool_.empty()) RemoveEntry(pool_.back());
  upper_.clear();
  upper_count_ = 0;
  upper_bytes_ = 0;
}

void IndexCache::RemoveEntry(Entry* entry) {
  // Swap-remove from the sampling pool, then drop from the skiplist.
  const size_t idx = entry->pool_index;
  SHERMAN_CHECK(idx < pool_.size() && pool_[idx] == entry);
  pool_[idx] = pool_.back();
  pool_[idx]->pool_index = idx;
  pool_.pop_back();
  const Key lo = entry->node.lo;
  SHERMAN_CHECK(level1_.Erase(lo));
  bytes_used_ -= node_bytes_;
}

void IndexCache::EvictUpperIfNeeded() {
  // The population is small by construction (bounded by the budget), so a
  // full LRU scan per eviction is fine.
  while (upper_bytes_ > upper_capacity_bytes_ && upper_count_ > 1) {
    uint8_t victim_level = 0;
    Key victim_lo = 0;
    uint64_t oldest = ~0ull;
    for (const auto& [level, nodes] : upper_) {
      for (const auto& [lo, e] : nodes) {
        if (e.last_used < oldest) {
          oldest = e.last_used;
          victim_level = level;
          victim_lo = lo;
        }
      }
    }
    upper_[victim_level].erase(victim_lo);
    upper_count_--;
    upper_bytes_ -= node_bytes_;
    stats_.evictions++;
  }
}

void IndexCache::EvictIfNeeded() {
  // Power-of-two-choices (§4.2.3): sample two cached nodes, evict the one
  // least recently used.
  while (bytes_used_ > capacity_bytes_ && pool_.size() > 1) {
    Entry* a = pool_[rng_.Uniform(pool_.size())];
    Entry* b = pool_[rng_.Uniform(pool_.size())];
    Entry* victim = (a->last_used <= b->last_used) ? a : b;
    stats_.evictions++;
    RemoveEntry(victim);
  }
}

}  // namespace sherman
