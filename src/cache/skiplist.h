// A deterministic skiplist map from uint64 keys to values, used by the
// index cache (the paper structures the type-① cache as a skiplist, §4.2.3).
// Single-threaded by construction: in the discrete-event simulation, client
// coroutines of one compute server never interleave inside a call.
#ifndef SHERMAN_CACHE_SKIPLIST_H_
#define SHERMAN_CACHE_SKIPLIST_H_

#include <array>
#include <cstdint>
#include <memory>

#include "util/logging.h"
#include "util/random.h"

namespace sherman {

template <typename V>
class SkipList {
 public:
  static constexpr int kMaxHeight = 16;

  explicit SkipList(uint64_t seed = 1)
      : rng_(seed), head_(new Node(0, V(), kMaxHeight)) {}

  ~SkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0];
      delete n;
      n = next;
    }
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Inserts or overwrites.
  void Insert(uint64_t key, V value) {
    Node* prev[kMaxHeight];
    Node* found = FindGreaterOrEqual(key, prev);
    if (found != nullptr && found->key == key) {
      found->value = std::move(value);
      return;
    }
    const int height = RandomHeight();
    Node* node = new Node(key, std::move(value), height);
    for (int i = 0; i < height; i++) {
      node->next[i] = prev[i]->next[i];
      prev[i]->next[i] = node;
    }
    size_++;
  }

  // Removes `key`; returns false if absent.
  bool Erase(uint64_t key) {
    Node* prev[kMaxHeight];
    Node* found = FindGreaterOrEqual(key, prev);
    if (found == nullptr || found->key != key) return false;
    for (int i = 0; i < found->height; i++) {
      if (prev[i]->next[i] == found) prev[i]->next[i] = found->next[i];
    }
    delete found;
    size_--;
    return true;
  }

  // Pointer to the value at `key`, or nullptr.
  V* Find(uint64_t key) {
    Node* prev[kMaxHeight];
    Node* found = FindGreaterOrEqual(key, prev);
    return (found != nullptr && found->key == key) ? &found->value : nullptr;
  }

  // Greatest entry with key <= `key` (nullptr if none). Sets *found_key.
  V* FindLessOrEqual(uint64_t key, uint64_t* found_key) {
    Node* prev[kMaxHeight];
    Node* ge = FindGreaterOrEqual(key, prev);
    if (ge != nullptr && ge->key == key) {
      *found_key = ge->key;
      return &ge->value;
    }
    if (prev[0] == head_) return nullptr;
    *found_key = prev[0]->key;
    return &prev[0]->value;
  }

  // In-order traversal helper for tests and iteration.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (Node* n = head_->next[0]; n != nullptr; n = n->next[0]) {
      fn(n->key, n->value);
    }
  }

 private:
  struct Node {
    uint64_t key;
    V value;
    int height;
    std::array<Node*, kMaxHeight> next{};

    Node(uint64_t k, V v, int h) : key(k), value(std::move(v)), height(h) {}
  };

  int RandomHeight() {
    int h = 1;
    while (h < kMaxHeight && (rng_.Next() & 3) == 0) h++;  // p = 1/4
    return h;
  }

  // First node with node->key >= key; fills prev[] at every height.
  Node* FindGreaterOrEqual(uint64_t key, Node** prev) {
    Node* x = head_;
    for (int i = kMaxHeight - 1; i >= 0; i--) {
      while (x->next[i] != nullptr && x->next[i]->key < key) x = x->next[i];
      prev[i] = x;
    }
    return x->next[0];
  }

  Random rng_;
  Node* head_;
  size_t size_ = 0;
};

}  // namespace sherman

#endif  // SHERMAN_CACHE_SKIPLIST_H_
