#include "cache/leaf_hints.h"

#include <cstring>
#include <vector>

#include "core/btree.h"
#include "fault/crash_point.h"
#include "sanitizer/dmsan.h"
#include "util/logging.h"

namespace sherman {

namespace {

// Registered at static init so the recover_test sweep sees the sites even
// in runs where no hint is ever published.
const int kSiteHintPublish = fault::RegisterCrashSite("hint.publish");
const int kSiteHintInvalidate = fault::RegisterCrashSite("hint.invalidate");

// The directory mutation is host-side bookkeeping beyond the standard RPC
// service slot; charge the wimpy memory thread a flat slice per op.
constexpr sim::SimTime kHintOpCostNs = 300;

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

// --- MS-side directory ------------------------------------------------------

LeafHintDirectory::LeafHintDirectory(rdma::MemoryServer* ms,
                                     dmsan::Checker* checker)
    : ms_(ms), checker_(checker) {
  ms->ChainRpcHandler(
      kRpcHintPublish, kRpcHintInvalidate,
      [this](uint64_t opcode, uint64_t arg, uint64_t arg2, uint16_t) {
        ms_->ChargeMemoryThread(kHintOpCostNs);
        return opcode == kRpcHintPublish ? Publish(arg, arg2)
                                         : Invalidate(arg);
      });
}

uint64_t LeafHintDirectory::live_entries() const {
  return ms_->host().Read64(kHintAreaOffset + 8);
}

uint64_t LeafHintDirectory::generation() const {
  return ms_->host().Read64(kHintAreaOffset);
}

void LeafHintDirectory::BumpGeneration() {
  ms_->host().Write64(ms_->simulator()->now(), kHintAreaOffset,
                      generation() + 1);
}

uint64_t LeafHintDirectory::Insert(uint64_t lo, uint64_t packed_addr) {
  const sim::SimTime now = ms_->simulator()->now();
  const uint64_t count = live_entries();
  const uint8_t* entries = ms_->host().raw(kHintAreaOffset + kHintHeaderBytes);

  // Binary search for the first entry with key >= lo.
  uint64_t a = 0;
  uint64_t b = count;
  while (a < b) {
    const uint64_t mid = (a + b) / 2;
    if (LoadU64(entries + mid * kHintSlotBytes) < lo) {
      a = mid + 1;
    } else {
      b = mid;
    }
  }

  uint8_t rec[kHintSlotBytes];
  std::memcpy(rec, &lo, 8);
  std::memcpy(rec + 8, &packed_addr, 8);
  const uint64_t fp = HintFingerprint(lo, packed_addr);
  std::memcpy(rec + 16, &fp, 8);

  const uint64_t pos_off =
      kHintAreaOffset + kHintHeaderBytes + a * kHintSlotBytes;
  if (a < count && LoadU64(entries + a * kHintSlotBytes) == lo) {
    // Same lo fence re-published (e.g. a migration copy before the old
    // address is retired): overwrite in place, releasing the old
    // address's hinted mark.
    const uint64_t old_packed = LoadU64(entries + a * kHintSlotBytes + 8);
    if (old_packed != packed_addr) {
      if (checker_ != nullptr) {
        checker_->OnHintInvalidated(rdma::GlobalAddress::FromU64(old_packed));
      }
      invalidated_++;
    }
    ms_->host().Write(now, pos_off, rec, kHintSlotBytes);
    return 1;
  }
  if (count >= kHintSlots) {
    dropped_full_++;
    return 0;  // advisory table: dropping is always safe
  }
  // Shift [a, count) one slot right, then place the new entry.
  if (a < count) {
    std::vector<uint8_t> tail((count - a) * kHintSlotBytes);
    std::memcpy(tail.data(), entries + a * kHintSlotBytes, tail.size());
    ms_->host().Write(now, pos_off + kHintSlotBytes, tail.data(),
                      static_cast<uint32_t>(tail.size()));
  }
  ms_->host().Write(now, pos_off, rec, kHintSlotBytes);
  ms_->host().Write64(now, kHintAreaOffset + 8, count + 1);
  return 1;
}

uint64_t LeafHintDirectory::Publish(uint64_t lo, uint64_t packed_addr) {
  const uint64_t stored = Insert(lo, packed_addr);
  if (stored != 0) {
    published_++;
    if (checker_ != nullptr) {
      checker_->OnHintPublished(rdma::GlobalAddress::FromU64(packed_addr));
    }
    BumpGeneration();
  }
  return stored;
}

uint64_t LeafHintDirectory::Invalidate(uint64_t packed_addr) {
  const sim::SimTime now = ms_->simulator()->now();
  uint64_t count = live_entries();
  const uint8_t* entries = ms_->host().raw(kHintAreaOffset + kHintHeaderBytes);
  uint64_t removed = 0;
  for (uint64_t i = 0; i < count;) {
    if (LoadU64(entries + i * kHintSlotBytes + 8) != packed_addr) {
      i++;
      continue;
    }
    // Shift [i+1, count) one slot left.
    if (i + 1 < count) {
      std::vector<uint8_t> tail((count - i - 1) * kHintSlotBytes);
      std::memcpy(tail.data(), entries + (i + 1) * kHintSlotBytes,
                  tail.size());
      ms_->host().Write(now, kHintAreaOffset + kHintHeaderBytes +
                                 i * kHintSlotBytes,
                        tail.data(), static_cast<uint32_t>(tail.size()));
    }
    count--;
    removed++;
  }
  if (removed != 0) {
    ms_->host().Write64(now, kHintAreaOffset + 8, count);
    invalidated_ += removed;
    if (checker_ != nullptr) {
      checker_->OnHintInvalidated(rdma::GlobalAddress::FromU64(packed_addr));
    }
    BumpGeneration();
  }
  return removed;
}

void LeafHintDirectory::SeedDirect(uint64_t lo, rdma::GlobalAddress addr) {
  if (Insert(lo, addr.ToU64()) != 0) {
    published_++;
    if (checker_ != nullptr) checker_->OnHintPublished(addr);
    BumpGeneration();
  }
}

// --- TreeClient mirror + publication hooks ----------------------------------

sim::Task<void> TreeClient::HintPublish(rdma::GlobalAddress leaf, Key lo,
                                        OpStats* stats) {
  if (!opt().enable_leaf_hints) co_return;
  co_await fault::Injector().AtSite(kSiteHintPublish, cs_id_);
  co_await QpFor(leaf).Rpc(kRpcHintPublish, lo, leaf.ToU64());
  if (stats != nullptr) stats->round_trips++;
  hint_stats_.publishes++;
  // This client's own mirror learns the new leaf for free.
  if (hint_fetched_) hint_mirror_[lo] = leaf;
}

sim::Task<void> TreeClient::HintInvalidate(rdma::GlobalAddress leaf,
                                           OpStats* stats) {
  if (!opt().enable_leaf_hints) co_return;
  co_await fault::Injector().AtSite(kSiteHintInvalidate, cs_id_);
  co_await QpFor(leaf).Rpc(kRpcHintInvalidate, leaf.ToU64());
  if (stats != nullptr) stats->round_trips++;
  hint_stats_.invalidates++;
  for (auto it = hint_mirror_.begin(); it != hint_mirror_.end();) {
    it = it->second == leaf ? hint_mirror_.erase(it) : std::next(it);
  }
}

sim::Task<void> TreeClient::HintRefresh(OpStats* stats) {
  const int num_ms = system_->fabric_.num_memory_servers();
  if (static_cast<int>(hint_gen_.size()) < num_ms) hint_gen_.resize(num_ms, 0);
  for (int ms = 0; ms < num_ms; ms++) {
    const rdma::GlobalAddress header(static_cast<uint16_t>(ms),
                                     kHintAreaOffset);
    uint8_t hdr[16];
    Status st = co_await ReadRaw(header, hdr, sizeof(hdr), stats);
    if (!st.ok()) continue;
    const uint64_t gen = LoadU64(hdr);
    uint64_t count = LoadU64(hdr + 8);
    if (hint_fetched_ && gen == hint_gen_[ms]) continue;
    if (count > kHintSlots) count = kHintSlots;  // torn header: best effort

    // Rebuild this MS's slice of the mirror (entries are homed by leaf
    // address, so lo keys never collide across MSs).
    for (auto it = hint_mirror_.begin(); it != hint_mirror_.end();) {
      it = it->second.node == ms ? hint_mirror_.erase(it) : std::next(it);
    }
    if (count > 0) {
      std::vector<uint8_t> buf(count * kHintSlotBytes);
      st = co_await ReadRaw(header.Plus(kHintHeaderBytes), buf.data(),
                            static_cast<uint32_t>(buf.size()), stats);
      if (!st.ok()) continue;
      for (uint64_t i = 0; i < count; i++) {
        const uint8_t* e = buf.data() + i * kHintSlotBytes;
        const uint64_t lo = LoadU64(e);
        const uint64_t packed = LoadU64(e + 8);
        // The fingerprint check drops entries torn by a concurrent table
        // mutation under the in-flight READ.
        if (LoadU64(e + 16) != HintFingerprint(lo, packed)) continue;
        const rdma::GlobalAddress addr = rdma::GlobalAddress::FromU64(packed);
        if (addr.is_null() || addr.node >= num_ms) continue;
        hint_mirror_[lo] = addr;
      }
    }
    hint_gen_[ms] = gen;
  }
  hint_fetched_ = true;
  hint_staleness_ = 0;
  hint_stats_.refreshes++;
}

sim::Task<bool> TreeClient::HintLeafAddr(Key key, rdma::GlobalAddress* out,
                                         OpStats* stats) {
  if (!opt().enable_leaf_hints) co_return false;
  if (!hint_fetched_ ||
      hint_staleness_ >= opt().hint_refresh_miss_threshold) {
    co_await HintRefresh(stats);
  }
  hint_stats_.consults++;
  auto it = hint_mirror_.upper_bound(key);
  if (it == hint_mirror_.begin()) co_return false;
  --it;
  *out = it->second;
  hint_stats_.served++;
  co_return true;
}

void TreeClient::NoteHintStale(Key key) {
  if (!opt().enable_leaf_hints) return;
  hint_stats_.stale++;
  hint_staleness_++;
  auto it = hint_mirror_.upper_bound(key);
  if (it != hint_mirror_.begin()) hint_mirror_.erase(std::prev(it));
}

void TreeClient::NoteHintChase() {
  if (!opt().enable_leaf_hints) return;
  // The hinted leaf was valid but the key had split off to the right: the
  // entry stays (it still covers its own range) but the mirror is behind —
  // nudge it toward a refresh.
  hint_stats_.chases++;
  hint_staleness_++;
}

}  // namespace sherman
