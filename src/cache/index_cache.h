// IndexCache: the compute-server-side cache of internal tree nodes
// (§4.2.3).
//
// Type ① — level-1 nodes (parents of leaves) — are cached in a skiplist
// keyed by lower fence key, bounded by a byte capacity, and evicted with
// power-of-two-choices: sample two random cached nodes and drop the least
// recently used. A hit resolves a key directly to a leaf address (one
// RDMA_READ per operation in the ideal case).
//
// Type ② — the upper levels (level >= 2, including the root) — are cached
// in per-level ordered maps under a dedicated byte budget (a quarter of the
// type-① capacity, floored at 16 nodes). A healthy tree has only a handful
// of such nodes, but stale entries accumulate across splits and root moves,
// so they are charged and LRU-evicted like any other cached node instead of
// growing without bound.
//
// The cache never causes consistency issues: fetched nodes carry fence keys
// and level, which the tree validates; on violation the tree calls
// Invalidate() and retries (the paper's lazy invalidation).
#ifndef SHERMAN_CACHE_INDEX_CACHE_H_
#define SHERMAN_CACHE_INDEX_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cache/skiplist.h"
#include "core/node_layout.h"
#include "rdma/global_address.h"
#include "util/random.h"

namespace sherman {

struct IndexCacheStats {
  uint64_t hits = 0;    // type-① (level-1) lookups
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
  uint64_t upper_hits = 0;   // type-② (level >= 2) lookups, counted
  uint64_t upper_misses = 0; // separately: they shorten a descent rather
                             // than replace it

  double HitRatio() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class IndexCache {
 public:
  IndexCache(uint64_t capacity_bytes, uint32_t node_bytes, uint64_t seed);
  ~IndexCache();

  IndexCache(const IndexCache&) = delete;
  IndexCache& operator=(const IndexCache&) = delete;

  // Type-① lookup: if a cached level-1 node covers `key`, returns it (its
  // ChildFor(key) is the target leaf). Counts a hit/miss.
  const ParsedInternal* LookupLevel1(Key key);

  // Caches a node: level-1 nodes go to the bounded type-① structure;
  // levels >= 2 go to the unbounded type-② top cache.
  void Insert(const ParsedInternal& node);

  // Type-② lookup: deepest cached upper-level node covering `key` (never
  // level 1). Returns nullptr if none (caller starts at the root).
  const ParsedInternal* LookupUpper(Key key);

  // Drops the cached node (any type) whose range covers `key` at address
  // `addr` — called when a fetched child contradicts the cached pointer.
  void Invalidate(Key key, rdma::GlobalAddress addr);

  // Drops the type-① entry covering `key` regardless of address — called
  // when the leaf it steered to failed its fence check (lazy invalidation,
  // §4.2.3).
  void InvalidateLevel1Covering(Key key);

  // Drops type-② entries covering `key` whose child pointer for `key` is
  // `child` — called when a descent through `child` found a tombstoned
  // (migrated-away) node: the live parent was flipped in place, so any
  // cached copy still steering to `child` is stale.
  void InvalidateUpperCovering(Key key, rdma::GlobalAddress child);

  // Drops every type-① entry whose fence interval intersects [lo, hi) —
  // the flip-time invalidation broadcast of a shard migration. Cached
  // leaf translations in the migrated range point at tombstones; dropping
  // them here saves every client one wasted READ + restart per key.
  void InvalidateKeyRange(Key lo, Key hi);

  // Drops everything (used when the root moves).
  void Clear();

  const IndexCacheStats& stats() const { return stats_; }
  uint64_t bytes_used() const { return bytes_used_ + upper_bytes_; }
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  size_t level1_nodes() const { return pool_.size(); }
  size_t upper_nodes() const { return upper_count_; }
  uint64_t upper_bytes_used() const { return upper_bytes_; }
  uint64_t upper_capacity_bytes() const { return upper_capacity_bytes_; }

 private:
  struct Entry {
    ParsedInternal node;
    uint64_t last_used = 0;
    size_t pool_index = 0;  // position in pool_ for O(1) random sampling
  };
  struct UpperEntry {
    ParsedInternal node;
    uint64_t last_used = 0;
  };

  void EvictIfNeeded();
  void EvictUpperIfNeeded();
  void RemoveEntry(Entry* entry);

  uint64_t capacity_bytes_;
  uint64_t upper_capacity_bytes_;
  uint32_t node_bytes_;
  Random rng_;
  uint64_t tick_ = 0;
  uint64_t bytes_used_ = 0;
  uint64_t upper_bytes_ = 0;
  size_t upper_count_ = 0;

  SkipList<std::unique_ptr<Entry>> level1_;  // keyed by lo fence
  std::vector<Entry*> pool_;                 // random-sampling mirror

  // Type-② top cache: level -> (lo fence -> entry).
  std::map<uint8_t, std::map<Key, UpperEntry>> upper_;

  IndexCacheStats stats_;
};

}  // namespace sherman

#endif  // SHERMAN_CACHE_INDEX_CACHE_H_
