// Leaf-hint sidecar (1-RTT point lookups): a compact MS-resident table
// mapping lo fence key -> (leaf address, fingerprint) for the leaves homed
// on that MS, in the Outback spirit of a lightweight MS-side routing
// structure in front of the index.
//
// A client with no cached path RDMA-READs each MS's table (header +
// sorted entry array) into a LOCAL MIRROR, then serves cold point lookups
// with ONE leaf READ at the hinted address. Hints are ADVISORY ONLY:
// every hinted leaf still passes the ordinary validation (version /
// checksum, tombstone, role, fence) and a miss or stale entry falls back
// to full B-link traversal — correctness never depends on a hint.
//
// Publication protocol: the structural op that creates or retires a leaf
// maintains the table over the leaf's HOME MS's memory-thread RPC lane
// (kRpcHintPublish / kRpcHintInvalidate):
//  - leaf split (fixed and varlen) publishes the new sibling after the
//    B-link commit;
//  - leaf merge, migration flip, and recovery replay invalidate BEFORE
//    the leaf's kRpcFreeNode — DMSan enforces the ordering (a node may
//    never be freed while a hint still maps to it);
//  - migration flip publishes the relocated copy after the child swap;
//  - bulk load seeds the table directly (no simulated traffic), like the
//    tree build itself.
// Because the invalidate and the free travel the same RPC lane, the
// MS-side table can never outlive the leaf it points to; the CLIENT
// mirror can (it refreshes on a generation change), which is exactly why
// hints stay advisory.
//
// Each entry carries fingerprint = HintFingerprint(lo, addr), recomputed
// by the client per entry, so a torn mirror fetch (the table mutated
// under the in-flight READ) drops the damaged entries instead of serving
// garbage addresses.
#ifndef SHERMAN_CACHE_LEAF_HINTS_H_
#define SHERMAN_CACHE_LEAF_HINTS_H_

#include <cstdint>

#include "alloc/layout.h"
#include "rdma/global_address.h"
#include "rdma/memory_server.h"

namespace sherman {

namespace dmsan {
class Checker;
}

// SplitMix64 finalizer over (lo, packed addr): cheap, deterministic, and
// recomputable client-side without shared state.
inline uint64_t HintFingerprint(uint64_t lo, uint64_t packed_addr) {
  uint64_t x = lo ^ (packed_addr * 0x9E3779B97F4A7C15ull) ^
               0x5EAF41B75ull /* leaf-hint salt */;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

// The MS-side directory: owns the hint area of one memory server's host
// DRAM (layout.h) and installs itself as the RPC handler for
// kRpcHintPublish / kRpcHintInvalidate on that MS's memory thread
// (chained behind the ChunkManager's handler). All mutations go through
// MemoryRegion::Write so concurrent client READs of the area observe them
// with torn-read fidelity.
class LeafHintDirectory {
 public:
  // `checker` (nullable) receives OnHintPublished / OnHintInvalidated so
  // the free-while-hinted rule can be enforced.
  LeafHintDirectory(rdma::MemoryServer* ms, dmsan::Checker* checker);

  LeafHintDirectory(const LeafHintDirectory&) = delete;
  LeafHintDirectory& operator=(const LeafHintDirectory&) = delete;

  // RPC bodies (also callable directly from tests).
  uint64_t Publish(uint64_t lo, uint64_t packed_addr);
  uint64_t Invalidate(uint64_t packed_addr);

  // Bulk-load seeding: same table mutation, no memory-thread charge (the
  // loader writes MS memory directly, before any simulated traffic).
  void SeedDirect(uint64_t lo, rdma::GlobalAddress addr);

  uint64_t live_entries() const;
  uint64_t generation() const;
  uint64_t published() const { return published_; }
  uint64_t invalidated() const { return invalidated_; }
  uint64_t dropped_full() const { return dropped_full_; }

 private:
  // Sorted-array maintenance over host memory. Returns 1 if stored.
  uint64_t Insert(uint64_t lo, uint64_t packed_addr);
  void BumpGeneration();

  rdma::MemoryServer* ms_;
  dmsan::Checker* checker_;
  uint64_t published_ = 0;
  uint64_t invalidated_ = 0;
  uint64_t dropped_full_ = 0;
};

}  // namespace sherman

#endif  // SHERMAN_CACHE_LEAF_HINTS_H_
