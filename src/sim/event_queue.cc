#include "sim/event_queue.h"

#include <utility>

namespace sherman::sim {

void EventQueue::Push(SimTime time, Callback fn) {
  heap_.push(Event{time, next_seq_++, std::move(fn)});
}

EventQueue::Callback EventQueue::Pop() {
  // priority_queue::top() returns a const ref; fn is marked mutable so we can
  // move the callback out before popping (callbacks are move-only in spirit).
  Callback fn = std::move(heap_.top().fn);
  heap_.pop();
  return fn;
}

}  // namespace sherman::sim
