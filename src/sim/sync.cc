#include "sim/sync.h"

#include <utility>

namespace sherman::sim {

bool CoroQueue::WakeOne() {
  if (waiters_.empty()) return false;
  auto h = waiters_.front();
  waiters_.pop_front();
  h.resume();
  return true;
}

size_t CoroQueue::WakeAll() {
  // Detach the waiter list before resuming: a resumed waiter's
  // continuation chain may run far (symmetric transfer) and destroy the
  // object owning this queue — e.g. a CountdownLatch living in a coroutine
  // frame whose awaiter finishes without suspending again. Iterating the
  // member deque across those resumes would read freed memory.
  std::deque<std::coroutine_handle<>> woken = std::move(waiters_);
  waiters_.clear();
  for (auto h : woken) h.resume();
  return woken.size();
}

}  // namespace sherman::sim
