#include "sim/sync.h"

namespace sherman::sim {

bool CoroQueue::WakeOne() {
  if (waiters_.empty()) return false;
  auto h = waiters_.front();
  waiters_.pop_front();
  h.resume();
  return true;
}

size_t CoroQueue::WakeAll() {
  size_t n = 0;
  while (WakeOne()) n++;
  return n;
}

}  // namespace sherman::sim
