// Coroutine synchronization primitives for simulated client threads.
#ifndef SHERMAN_SIM_SYNC_H_
#define SHERMAN_SIM_SYNC_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <utility>

#include "sim/simulator.h"

namespace sherman::sim {

// A FIFO queue of parked coroutines. Wake order equals wait order.
class CoroQueue {
 public:
  bool empty() const { return waiters_.empty(); }
  size_t size() const { return waiters_.size(); }

  // Awaitable that parks the calling coroutine until woken.
  struct Waiter {
    CoroQueue* queue;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      queue->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  Waiter Wait() { return Waiter{this}; }

  // Resumes the oldest waiter inline. Returns false if none.
  bool WakeOne();

  // Resumes all waiters (in FIFO order). Returns the number woken.
  size_t WakeAll();

  // Removes every parked handle WITHOUT resuming (crash teardown: the
  // caller hands a dead client's never-to-be-woken waiters to the fault
  // graveyard; see fault/crash_point.h).
  std::deque<std::coroutine_handle<>> DetachAll() {
    return std::exchange(waiters_, {});
  }

 private:
  std::deque<std::coroutine_handle<>> waiters_;
};

// A counting latch: coroutines Arrive(), one waiter is released when the
// count reaches zero. Used by the bench runner to join client coroutines.
class CountdownLatch {
 public:
  explicit CountdownLatch(uint64_t count) : remaining_(count) {}

  void Arrive() {
    if (remaining_ > 0 && --remaining_ == 0) done_.WakeAll();
  }

  bool done() const { return remaining_ == 0; }

  // Awaitable: ready immediately if the count already reached zero.
  struct Waiter {
    CountdownLatch* latch;
    bool await_ready() const noexcept { return latch->done(); }
    void await_suspend(std::coroutine_handle<> h) {
      latch->done_.Wait().await_suspend(h);
    }
    void await_resume() const noexcept {}
  };
  Waiter Wait() { return Waiter{this}; }

  uint64_t remaining() const { return remaining_; }

 private:
  uint64_t remaining_;
  CoroQueue done_;
};

}  // namespace sherman::sim

#endif  // SHERMAN_SIM_SYNC_H_
