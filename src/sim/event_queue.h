// A time-ordered event queue for the discrete-event simulator. Events with
// equal timestamps fire in insertion order (stable), which keeps every
// simulation run deterministic.
#ifndef SHERMAN_SIM_EVENT_QUEUE_H_
#define SHERMAN_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace sherman::sim {

// Simulated time in nanoseconds.
using SimTime = uint64_t;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  void Push(SimTime time, Callback fn);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // Time of the earliest pending event. Requires !empty().
  SimTime NextTime() const { return heap_.top().time; }

  // Removes and returns the earliest event's callback. Requires !empty().
  Callback Pop();

 private:
  struct Event {
    SimTime time;
    uint64_t seq;  // tie-breaker: insertion order
    mutable Callback fn;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace sherman::sim

#endif  // SHERMAN_SIM_EVENT_QUEUE_H_
