#include "sim/simulator.h"

#include "util/logging.h"

namespace sherman::sim {

void Simulator::At(SimTime t, EventQueue::Callback fn) {
  SHERMAN_CHECK_MSG(t >= now_, "scheduling into the past: t=%llu now=%llu",
                    static_cast<unsigned long long>(t),
                    static_cast<unsigned long long>(now_));
  queue_.Push(t, std::move(fn));
}

bool Simulator::RunOne() {
  if (queue_.empty()) return false;
  now_ = queue_.NextTime();
  auto fn = queue_.Pop();
  steps_++;
  fn();
  return true;
}

uint64_t Simulator::RunUntil(SimTime deadline) {
  uint64_t processed = 0;
  while (!queue_.empty() && queue_.NextTime() <= deadline) {
    RunOne();
    processed++;
  }
  if (!queue_.empty() && now_ < deadline) now_ = deadline;
  return processed;
}

}  // namespace sherman::sim
