// Coroutine task types for the simulator.
//
// Task<T> is a lazy coroutine: it starts when first awaited and resumes its
// awaiter (via symmetric transfer) when it finishes. A parent coroutine owns
// the child Task object, whose destructor destroys the child frame. Detached
// top-level coroutines are started with Spawn(), which wraps the task in a
// self-destroying driver.
//
// The library is exception-free (database-engine style); an exception
// escaping a coroutine aborts the process.
#ifndef SHERMAN_SIM_TASK_H_
#define SHERMAN_SIM_TASK_H_

#include <coroutine>
#include <cstdlib>
#include <optional>
#include <utility>

namespace sherman::sim {

namespace internal {

struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    auto continuation = h.promise().continuation;
    return continuation ? continuation : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation;

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { std::abort(); }
};

}  // namespace internal

template <typename T = void>
class [[nodiscard]] Task;

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : internal::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~Task() {
    if (handle_) handle_.destroy();
  }

  // Awaiter interface: starts the child and resumes the parent on finish.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;
  }
  T await_resume() { return std::move(*handle_.promise().value); }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : internal::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;
  }
  void await_resume() const noexcept {}

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  std::coroutine_handle<promise_type> handle_;
};

namespace internal {

// Self-destroying driver for detached coroutines.
struct Detached {
  struct promise_type {
    Detached get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() noexcept { std::abort(); }
  };
};

}  // namespace internal

// Starts `task` immediately (runs until its first suspension point) and lets
// it run to completion driven by simulator events. The task frame is
// destroyed when it finishes.
inline void Spawn(Task<void> task) {
  [](Task<void> t) -> internal::Detached { co_await std::move(t); }(
      std::move(task));
}

// OneShot: a single-fire signal connecting event callbacks to coroutines.
// One coroutine may await it; Fire() resumes the waiter inline (within the
// current event).
class OneShot {
 public:
  OneShot() = default;
  OneShot(const OneShot&) = delete;
  OneShot& operator=(const OneShot&) = delete;

  bool fired() const { return fired_; }

  void Fire() {
    fired_ = true;
    if (waiter_) {
      auto h = std::exchange(waiter_, nullptr);
      h.resume();
    }
  }

  bool await_ready() const noexcept { return fired_; }
  void await_suspend(std::coroutine_handle<> h) { waiter_ = h; }
  void await_resume() const noexcept {}

  // Removes the parked handle WITHOUT resuming it. Crash teardown only: a
  // dead client's coroutine parked on a signal that will never fire is
  // handed to the fault graveyard so it stays reachable (never resumed,
  // never destroyed — see fault/crash_point.h).
  std::coroutine_handle<> DetachWaiter() {
    return std::exchange(waiter_, nullptr);
  }

 private:
  bool fired_ = false;
  std::coroutine_handle<> waiter_ = nullptr;
};

}  // namespace sherman::sim

#endif  // SHERMAN_SIM_TASK_H_
