// The discrete-event simulator driving the whole RDMA fabric. All "client
// threads" are coroutines resumed by events from this queue; simulated time
// only advances between events, so a run is fully deterministic.
#ifndef SHERMAN_SIM_SIMULATOR_H_
#define SHERMAN_SIM_SIMULATOR_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <limits>

#include "sim/event_queue.h"

namespace sherman::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  uint64_t steps() const { return steps_; }
  bool idle() const { return queue_.empty(); }

  // Schedules fn at absolute time t (>= now).
  void At(SimTime t, EventQueue::Callback fn);

  // Schedules fn `delay` nanoseconds from now.
  void After(SimTime delay, EventQueue::Callback fn) {
    At(now_ + delay, std::move(fn));
  }

  // Processes the earliest event. Returns false if the queue is empty.
  bool RunOne();

  // Processes events until the queue drains. Returns events processed.
  uint64_t Run() { return RunUntil(std::numeric_limits<SimTime>::max()); }

  // Processes events with time <= deadline; afterwards now() == deadline if
  // any later events remain, else the time of the last event processed.
  uint64_t RunUntil(SimTime deadline);

  // Awaitable: suspend the calling coroutine for `delay` simulated ns.
  // A zero delay still round-trips through the event queue, preserving a
  // consistent interleaving model (yield point).
  struct DelayAwaiter {
    Simulator* sim;
    SimTime delay;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sim->After(delay, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };
  DelayAwaiter Delay(SimTime delay) { return DelayAwaiter{this, delay}; }

 private:
  SimTime now_ = 0;
  uint64_t steps_ = 0;
  EventQueue queue_;
};

}  // namespace sherman::sim

#endif  // SHERMAN_SIM_SIMULATOR_H_
