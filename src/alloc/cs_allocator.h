// CsAllocator: the compute-server side of the two-stage allocation scheme
// (§4.2.4). A CS obtains 8 MB chunks from memory servers (chosen round-
// robin) over RPC, then serves node-sized allocations locally from the
// current chunk — avoiding network round trips for most allocations.
#ifndef SHERMAN_ALLOC_CS_ALLOCATOR_H_
#define SHERMAN_ALLOC_CS_ALLOCATOR_H_

#include <cstdint>
#include <vector>

#include "alloc/layout.h"
#include "rdma/fabric.h"
#include "rdma/global_address.h"
#include "sim/task.h"

namespace sherman {

class CsAllocator {
 public:
  CsAllocator(rdma::Fabric* fabric, int cs_id);

  // Allocates `size` bytes of disaggregated memory (size <= kChunkSize).
  // Fast path: bump allocation in the current chunk (no network). Slow
  // path: one RPC to the next memory server for a fresh chunk.
  // Returns the null address if every MS is exhausted.
  sim::Task<rdma::GlobalAddress> Alloc(uint32_t size);

  // Returns memory to a CS-local free list keyed by size.
  void Free(rdma::GlobalAddress addr, uint32_t size);

  uint64_t chunk_rpcs() const { return chunk_rpcs_; }
  uint64_t node_recycle_rpcs() const { return node_recycle_rpcs_; }

 private:
  struct FreeBin {
    uint32_t size;
    std::vector<rdma::GlobalAddress> entries;
  };

  rdma::Fabric* fabric_;
  int cs_id_;
  int next_ms_ = 0;   // round-robin cursor (fresh chunks)
  int probe_ms_ = 0;  // round-robin cursor (recycle-pool probes)
  uint32_t allocs_since_probe_ = 0;
  // Current chunk (single active chunk; a new one is fetched on exhaustion).
  rdma::GlobalAddress chunk_base_ = rdma::kNullAddress;
  uint64_t chunk_used_ = 0;
  std::vector<FreeBin> free_bins_;
  uint64_t chunk_rpcs_ = 0;
  uint64_t node_recycle_rpcs_ = 0;  // allocations served from recycled nodes
};

}  // namespace sherman

#endif  // SHERMAN_ALLOC_CS_ALLOCATOR_H_
