#include "alloc/reclaim.h"

#include "util/logging.h"

namespace sherman {

void ReclaimEpoch::Exit(uint64_t epoch) {
  auto it = active_.find(epoch);
  SHERMAN_CHECK_MSG(it != active_.end() && it->second > 0,
                    "epoch exit without matching enter");
  if (--it->second == 0) active_.erase(it);
  // Advance once the oldest cohort drains: frees tagged up to the old
  // epoch become recyclable as soon as the remaining (newer) pins exit.
  if (active_.empty() || active_.begin()->first >= global_) global_++;
}

}  // namespace sherman
