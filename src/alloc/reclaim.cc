#include "alloc/reclaim.h"

#include "util/logging.h"

namespace sherman {

void ReclaimEpoch::AdvancePastDrained() {
  // Advance once the oldest cohort drains: frees tagged up to the old
  // epoch become recyclable as soon as the remaining (newer) pins exit.
  if (active_.empty() || active_.begin()->first >= global_) global_++;
}

void ReclaimEpoch::Exit(uint64_t epoch, int cs) {
  if (epoch == kDeadEpoch) return;  // pin of an already-dead client
  if (cs >= 0) {
    if (dead_.count(cs)) return;  // released wholesale by MarkDead
    auto cit = by_cs_.find(cs);
    SHERMAN_CHECK_MSG(cit != by_cs_.end(), "epoch exit for untracked client");
    auto eit = cit->second.find(epoch);
    SHERMAN_CHECK(eit != cit->second.end() && eit->second > 0);
    if (--eit->second == 0) cit->second.erase(eit);
    if (cit->second.empty()) by_cs_.erase(cit);
  }
  auto it = active_.find(epoch);
  SHERMAN_CHECK_MSG(it != active_.end() && it->second > 0,
                    "epoch exit without matching enter");
  if (--it->second == 0) active_.erase(it);
  AdvancePastDrained();
}

void ReclaimEpoch::MarkDead(int cs) {
  if (cs < 0 || dead_.count(cs)) return;
  dead_.insert(cs);
  auto cit = by_cs_.find(cs);
  if (cit == by_cs_.end()) return;
  for (const auto& [epoch, count] : cit->second) {
    auto it = active_.find(epoch);
    SHERMAN_CHECK(it != active_.end() && it->second >= count);
    it->second -= count;
    if (it->second == 0) active_.erase(it);
  }
  by_cs_.erase(cit);
  AdvancePastDrained();
}

}  // namespace sherman
