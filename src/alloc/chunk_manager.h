// ChunkManager: the memory-server side of the two-stage allocation scheme
// (§4.2.4). The MS's wimpy memory thread hands out fixed 8 MB chunks over
// RPC; all fine-grained allocation happens at compute servers.
#ifndef SHERMAN_ALLOC_CHUNK_MANAGER_H_
#define SHERMAN_ALLOC_CHUNK_MANAGER_H_

#include <cstdint>
#include <vector>

#include "alloc/layout.h"
#include "rdma/memory_server.h"

namespace sherman {

class ChunkManager {
 public:
  // Manages the chunk area of `ms` and installs itself as the RPC handler
  // for kRpcAllocChunk / kRpcFreeChunk.
  explicit ChunkManager(rdma::MemoryServer* ms);

  // Returns the host-memory offset of a fresh chunk, or 0 if exhausted.
  uint64_t AllocChunk();
  // Returns a chunk to the free list. `offset` must have come from
  // AllocChunk.
  void FreeChunk(uint64_t offset);

  uint64_t total_chunks() const { return total_chunks_; }
  uint64_t allocated_chunks() const { return allocated_; }

 private:
  rdma::MemoryServer* ms_;
  uint64_t next_fresh_;       // bump pointer over never-used chunks
  uint64_t end_;              // end of the chunk area
  uint64_t total_chunks_;
  uint64_t allocated_ = 0;
  std::vector<uint64_t> free_list_;
};

}  // namespace sherman

#endif  // SHERMAN_ALLOC_CHUNK_MANAGER_H_
