// ChunkManager: the memory-server side of the two-stage allocation scheme
// (§4.2.4). The MS's wimpy memory thread hands out fixed 8 MB chunks over
// RPC; all fine-grained allocation happens at compute servers.
//
// Reclamation (kRpcFreeNode / kRpcAllocNode): node-sized regions freed by
// leaf merges and migration tombstone retirement park on a per-MS grace
// list tagged with the fabric-wide reclamation epoch (alloc/reclaim.h).
// Once every operation pinned at or before that epoch has retired, the
// node moves to a size-keyed recycle pool; compute servers drain the pool
// before requesting fresh chunks, so delete-heavy churn plateaus instead
// of growing the chunk footprint monotonically.
#ifndef SHERMAN_ALLOC_CHUNK_MANAGER_H_
#define SHERMAN_ALLOC_CHUNK_MANAGER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "alloc/layout.h"
#include "alloc/reclaim.h"
#include "rdma/memory_server.h"

namespace sherman {

class ChunkManager {
 public:
  // Manages the chunk area of `ms` and installs itself as the RPC handler
  // for kRpcAllocChunk / kRpcFreeChunk / kRpcFreeNode / kRpcAllocNode.
  // `reclaim` keys the grace list; null means no grace period (frees are
  // recyclable immediately — unit-test configurations only).
  explicit ChunkManager(rdma::MemoryServer* ms,
                        const ReclaimEpoch* reclaim = nullptr);

  // Returns the host-memory offset of a fresh chunk, or 0 if exhausted.
  uint64_t AllocChunk();
  // Returns a chunk to the free list. `offset` must have come from
  // AllocChunk.
  void FreeChunk(uint64_t offset);

  // Parks a node-sized region on the grace list, tagged with the current
  // reclamation epoch. The bytes stay untouched (readers bouncing off the
  // tombstone need them) until the node is recycled via AllocNode.
  // Idempotent: re-freeing an already-parked offset is a counted no-op
  // (crash recovery re-issues frees whose original may have landed).
  void FreeNode(uint64_t offset, uint32_t size);
  // Hands out a recycled node of exactly `size` bytes whose grace period
  // has passed, or 0 if none is ready.
  uint64_t AllocNode(uint32_t size);

  // Crash recovery (kRpcSweepLocks): clears every lock lane owned by
  // `owner_tag` in this MS's device and host lock tables. Returns lanes
  // released.
  uint64_t SweepLocks(uint16_t owner_tag);

  // --- value-log segment bookkeeping (src/vlog/) ---
  // Segments are carved out of this MS's chunk area by compute servers;
  // the MS is the single liveness authority, so owner and foreign clients
  // cannot race an extent retire against a segment free. A sealed segment
  // whose extents are all dead is freed straight onto the node grace list
  // (same epoch protection as merged leaves).
  void VlogRegister(uint64_t base, uint32_t cls, uint32_t seg_bytes);
  uint64_t VlogRetire(uint64_t addr);  // any offset inside the extent
  void VlogSeal(uint64_t base, uint32_t used);
  // base | (used << 40) | (cls << 56) of a sealed, unclaimed segment with
  // dead permille >= `min_dead_permille` (marks it claimed); 0 if none.
  // Segment bases are chunk-area offsets (< 2^40) and `used` <= 65535
  // extents (TreeOptions::Validate bounds vlog_segment_bytes), so the
  // packing is lossless.
  uint64_t VlogVictim(uint64_t min_dead_permille);
  uint64_t VlogMaskWord(uint64_t base, uint32_t word) const;

  uint64_t vlog_live_segments() const { return vlog_.size(); }
  uint64_t vlog_retired_extents() const { return vlog_retires_; }
  uint64_t vlog_segments_freed() const { return vlog_segments_freed_; }
  uint64_t vlog_victims_claimed() const { return vlog_victims_; }

  uint64_t total_chunks() const { return total_chunks_; }
  uint64_t allocated_chunks() const { return allocated_; }
  uint64_t allocated_bytes() const { return allocated_ * kChunkSize; }

  uint64_t nodes_freed() const { return nodes_freed_; }
  uint64_t nodes_recycled() const { return nodes_recycled_; }
  uint64_t duplicate_frees() const { return duplicate_frees_; }
  // Freed nodes still inside their grace window (not yet poolable).
  uint64_t grace_pending() const { return grace_.size(); }
  uint64_t recycle_pool_bytes() const { return pool_bytes_; }

 private:
  struct GraceNode {
    uint64_t offset;
    uint32_t size;
    uint64_t epoch;  // reclamation epoch at free time
  };

  // Moves grace-list entries whose epoch has been passed into the
  // size-keyed recycle pools. Grace entries are epoch-ordered (epochs
  // only grow), so the sweep stops at the first still-protected node.
  void SweepGraceList();

  rdma::MemoryServer* ms_;
  const ReclaimEpoch* reclaim_;
  uint64_t next_fresh_;       // bump pointer over never-used chunks
  uint64_t end_;              // end of the chunk area
  uint64_t total_chunks_;
  uint64_t allocated_ = 0;
  std::vector<uint64_t> free_list_;

  struct VlogSegment {
    uint32_t cls = 0;        // extent size = 64 << cls bytes
    uint32_t seg_bytes = 0;
    uint32_t capacity = 0;   // extents the segment can hold
    uint32_t used = 0;       // set at seal; 0 while the owner appends
    uint32_t dead_count = 0;
    uint64_t sealed_epoch = 0;  // reclaim epoch current at seal time
    bool sealed = false;
    bool claimed = false;    // a GC pass owns relocation
    std::vector<uint64_t> dead;  // bitmap, one bit per extent slot
  };

  // Frees a fully-dead sealed segment onto the grace list.
  void VlogMaybeFree(uint64_t base);

  std::deque<GraceNode> grace_;
  std::map<uint32_t, std::vector<uint64_t>> pool_;  // size -> offsets
  std::set<uint64_t> parked_;  // offsets in grace_ or pool_ (dup-free guard)
  uint64_t pool_bytes_ = 0;
  uint64_t nodes_freed_ = 0;
  uint64_t nodes_recycled_ = 0;
  uint64_t duplicate_frees_ = 0;

  std::map<uint64_t, VlogSegment> vlog_;  // base offset -> segment
  uint64_t vlog_retires_ = 0;
  uint64_t vlog_segments_freed_ = 0;
  uint64_t vlog_victims_ = 0;
};

}  // namespace sherman

#endif  // SHERMAN_ALLOC_CHUNK_MANAGER_H_
