#include "alloc/cs_allocator.h"

#include "util/logging.h"

namespace sherman {

CsAllocator::CsAllocator(rdma::Fabric* fabric, int cs_id)
    : fabric_(fabric), cs_id_(cs_id) {
  next_ms_ = cs_id % fabric->num_memory_servers();  // stagger CSs
}

sim::Task<rdma::GlobalAddress> CsAllocator::Alloc(uint32_t size) {
  SHERMAN_CHECK(size > 0 && size <= kChunkSize);
  // Reuse freed memory of the same size first.
  for (auto& bin : free_bins_) {
    if (bin.size == size && !bin.entries.empty()) {
      rdma::GlobalAddress addr = bin.entries.back();
      bin.entries.pop_back();
      co_return addr;
    }
  }
  // Fast path: bump-allocate in the current chunk. The loop handles the
  // case where another coroutine of this CS replaced the chunk while we
  // were awaiting the RPC.
  for (int attempts = 0;
       attempts <= 2 * fabric_->num_memory_servers(); attempts++) {
    if (!chunk_base_.is_null() && chunk_used_ + size <= kChunkSize) {
      rdma::GlobalAddress addr = chunk_base_.Plus(chunk_used_);
      chunk_used_ += size;
      co_return addr;
    }
    // Slow path: RPC the next MS's memory thread for a fresh chunk.
    const int ms = next_ms_;
    next_ms_ = (next_ms_ + 1) % fabric_->num_memory_servers();
    chunk_rpcs_++;
    const uint64_t offset =
        co_await fabric_->qp(cs_id_, ms).Rpc(kRpcAllocChunk, 0);
    if (offset != 0) {
      chunk_base_ = rdma::GlobalAddress(static_cast<uint16_t>(ms), offset);
      chunk_used_ = 0;
    }
  }
  co_return rdma::kNullAddress;  // all memory servers exhausted
}

void CsAllocator::Free(rdma::GlobalAddress addr, uint32_t size) {
  SHERMAN_CHECK(!addr.is_null());
  for (auto& bin : free_bins_) {
    if (bin.size == size) {
      bin.entries.push_back(addr);
      return;
    }
  }
  free_bins_.push_back(FreeBin{size, {addr}});
}

}  // namespace sherman
