#include "alloc/cs_allocator.h"

#include "sanitizer/dmsan.h"
#include "util/logging.h"

namespace sherman {

namespace {
// How many allocations ride the local bump chunk between probes of the
// MS-side recycle pool. The probe is one RPC; at 1/64 of the (already
// rare, split-driven) allocation rate its cost is noise, but it bounds
// how long delete-churn frees can sit unreused while fresh chunk bytes
// are still being consumed. A successful probe holds the allocator in
// "drain mode" (probe again next time), so while the pool has nodes the
// chunk footprint is frozen outright.
constexpr uint32_t kRecycleProbePeriod = 64;

// DMSan feed: a handed-out region is private to the allocating CS until
// the structural op that writes it publishes it into the tree. Covers the
// bump path, MS-side recycled nodes (the freed->private transition), and
// CS-local free-bin reuse alike.
void DmsanNodeAllocated(rdma::Fabric* fabric, int cs_id,
                        rdma::GlobalAddress addr, uint32_t size) {
  if (!dmsan::Active()) return;
  if (dmsan::Checker* c = dmsan::Find(&fabric->simulator())) {
    c->OnNodeAllocated(cs_id, addr, size);
  }
}
}  // namespace

CsAllocator::CsAllocator(rdma::Fabric* fabric, int cs_id)
    : fabric_(fabric), cs_id_(cs_id) {
  next_ms_ = cs_id % fabric->num_memory_servers();  // stagger CSs
  probe_ms_ = next_ms_;
}

sim::Task<rdma::GlobalAddress> CsAllocator::Alloc(uint32_t size) {
  SHERMAN_CHECK(size > 0 && size <= kChunkSize);
  // Reuse freed memory of the same size first.
  for (auto& bin : free_bins_) {
    if (bin.size == size && !bin.entries.empty()) {
      rdma::GlobalAddress addr = bin.entries.back();
      bin.entries.pop_back();
      DmsanNodeAllocated(fabric_, cs_id_, addr, size);
      co_return addr;
    }
  }
  // Periodic probe of the MS-side recycle pools (leaf merges, migration
  // tombstone retirement park nodes there after their epoch grace).
  if (++allocs_since_probe_ >= kRecycleProbePeriod) {
    allocs_since_probe_ = 0;
    const int ms = probe_ms_;
    probe_ms_ = (probe_ms_ + 1) % fabric_->num_memory_servers();
    const uint64_t off = co_await fabric_->qp(cs_id_, ms).Rpc(kRpcAllocNode,
                                                              size);
    if (off != 0) {
      node_recycle_rpcs_++;
      allocs_since_probe_ = kRecycleProbePeriod;  // drain mode
      const rdma::GlobalAddress addr(static_cast<uint16_t>(ms), off);
      DmsanNodeAllocated(fabric_, cs_id_, addr, size);
      co_return addr;
    }
  }
  // Fast path: bump-allocate in the current chunk. The loop handles the
  // case where another coroutine of this CS replaced the chunk while we
  // were awaiting the RPC.
  for (int attempts = 0;
       attempts <= 2 * fabric_->num_memory_servers(); attempts++) {
    if (!chunk_base_.is_null() && chunk_used_ + size <= kChunkSize) {
      rdma::GlobalAddress addr = chunk_base_.Plus(chunk_used_);
      chunk_used_ += size;
      DmsanNodeAllocated(fabric_, cs_id_, addr, size);
      co_return addr;
    }
    // Slow path: prefer a recycled node over growing the chunk footprint
    // (delete-heavy churn feeds this pool; the chunk count plateaus as
    // long as recycling keeps up with demand), then fall back to a fresh
    // chunk from the same MS.
    const int ms = next_ms_;
    next_ms_ = (next_ms_ + 1) % fabric_->num_memory_servers();
    const uint64_t recycled =
        co_await fabric_->qp(cs_id_, ms).Rpc(kRpcAllocNode, size);
    if (recycled != 0) {
      node_recycle_rpcs_++;
      const rdma::GlobalAddress addr(static_cast<uint16_t>(ms), recycled);
      DmsanNodeAllocated(fabric_, cs_id_, addr, size);
      co_return addr;
    }
    chunk_rpcs_++;
    const uint64_t offset =
        co_await fabric_->qp(cs_id_, ms).Rpc(kRpcAllocChunk, 0);
    if (offset != 0) {
      chunk_base_ = rdma::GlobalAddress(static_cast<uint16_t>(ms), offset);
      chunk_used_ = 0;
    }
  }
  co_return rdma::kNullAddress;  // all memory servers exhausted
}

void CsAllocator::Free(rdma::GlobalAddress addr, uint32_t size) {
  SHERMAN_CHECK(!addr.is_null());
  for (auto& bin : free_bins_) {
    if (bin.size == size) {
      bin.entries.push_back(addr);
      return;
    }
  }
  free_bins_.push_back(FreeBin{size, {addr}});
}

}  // namespace sherman
