#include "alloc/chunk_manager.h"

#include "sanitizer/dmsan.h"
#include "util/logging.h"

namespace sherman {

ChunkManager::ChunkManager(rdma::MemoryServer* ms, const ReclaimEpoch* reclaim)
    : ms_(ms), reclaim_(reclaim) {
  const uint64_t size = ms->host().size();
  SHERMAN_CHECK_MSG(size > kChunkAreaOffset + kChunkSize,
                    "MS memory too small for chunk area");
  next_fresh_ = kChunkAreaOffset;
  end_ = size - (size - kChunkAreaOffset) % kChunkSize;
  total_chunks_ = (end_ - kChunkAreaOffset) / kChunkSize;

  ms->set_rpc_handler([this](uint64_t opcode, uint64_t arg, uint64_t arg2,
                             uint16_t) {
    switch (opcode) {
      case kRpcAllocChunk:
        return AllocChunk();
      case kRpcFreeChunk:
        FreeChunk(arg);
        return uint64_t{0};
      case kRpcFreeNode:
        FreeNode(arg, static_cast<uint32_t>(arg2));
        return uint64_t{0};
      case kRpcAllocNode:
        return AllocNode(static_cast<uint32_t>(arg));
      case kRpcSweepLocks:
        return SweepLocks(static_cast<uint16_t>(arg));
      case kRpcVlogRegister:
        VlogRegister(arg, static_cast<uint32_t>(arg2 & 0xff),
                     static_cast<uint32_t>(arg2 >> 8));
        return uint64_t{0};
      case kRpcVlogRetire:
        return VlogRetire(arg);
      case kRpcVlogSeal:
        VlogSeal(arg, static_cast<uint32_t>(arg2));
        return uint64_t{0};
      case kRpcVlogVictim:
        return VlogVictim(arg);
      case kRpcVlogMask:
        return VlogMaskWord(arg, static_cast<uint32_t>(arg2));
      default:
        SHERMAN_CHECK_MSG(false, "unknown RPC opcode %llu",
                          static_cast<unsigned long long>(opcode));
        return uint64_t{0};
    }
  });
}

uint64_t ChunkManager::AllocChunk() {
  uint64_t offset = 0;
  if (!free_list_.empty()) {
    offset = free_list_.back();
    free_list_.pop_back();
  } else if (next_fresh_ + kChunkSize <= end_) {
    offset = next_fresh_;
    next_fresh_ += kChunkSize;
  } else {
    return 0;  // exhausted
  }
  allocated_++;
  return offset;
}

void ChunkManager::FreeChunk(uint64_t offset) {
  SHERMAN_CHECK(offset >= kChunkAreaOffset && offset < end_);
  SHERMAN_CHECK((offset - kChunkAreaOffset) % kChunkSize == 0);
  SHERMAN_CHECK(allocated_ > 0);
  allocated_--;
  free_list_.push_back(offset);
}

void ChunkManager::FreeNode(uint64_t offset, uint32_t size) {
  SHERMAN_CHECK(offset >= kChunkAreaOffset && offset + size <= end_);
  SHERMAN_CHECK(size > 0 && size < kChunkSize);
  // Idempotent: crash recovery re-frees any node whose original free may
  // or may not have landed before the client died (the intent record is
  // cleared only after the free). A node already parked stays parked once.
  if (!parked_.insert(offset).second) {
    duplicate_frees_++;
    return;
  }
  const uint64_t epoch = reclaim_ != nullptr ? reclaim_->current() : 0;
  grace_.push_back(GraceNode{offset, size, epoch});
  nodes_freed_++;
  if (dmsan::Active()) {
    if (dmsan::Checker* c = dmsan::Find(ms_->simulator())) {
      c->OnNodeFreed(ms_->id(), offset, size, epoch);
    }
  }
}

void ChunkManager::SweepGraceList() {
  while (!grace_.empty()) {
    const GraceNode& n = grace_.front();
    if (reclaim_ != nullptr && !reclaim_->SafeToRecycle(n.epoch)) break;
    pool_[n.size].push_back(n.offset);
    pool_bytes_ += n.size;
    grace_.pop_front();
  }
}

uint64_t ChunkManager::AllocNode(uint32_t size) {
  SweepGraceList();
  auto it = pool_.find(size);
  if (it == pool_.end() || it->second.empty()) return 0;
  const uint64_t offset = it->second.back();
  it->second.pop_back();
  pool_bytes_ -= size;
  nodes_recycled_++;
  parked_.erase(offset);
  return offset;
}

void ChunkManager::VlogRegister(uint64_t base, uint32_t cls,
                                uint32_t seg_bytes) {
  SHERMAN_CHECK(base >= kChunkAreaOffset && base + seg_bytes <= end_);
  SHERMAN_CHECK(cls < 8 && seg_bytes > 0);
  const uint32_t extent = 64u << cls;
  SHERMAN_CHECK(seg_bytes >= extent);
  VlogSegment seg;
  seg.cls = cls;
  seg.seg_bytes = seg_bytes;
  seg.capacity = seg_bytes / extent;
  seg.dead.assign((seg.capacity + 63) / 64, 0);
  SHERMAN_CHECK(vlog_.emplace(base, std::move(seg)).second);
}

uint64_t ChunkManager::VlogRetire(uint64_t addr) {
  // Containing-segment lookup (addr may point anywhere inside the extent).
  auto it = vlog_.upper_bound(addr);
  if (it == vlog_.begin()) return 0;
  --it;
  VlogSegment& seg = it->second;
  if (addr >= it->first + seg.seg_bytes) return 0;  // freed/stale segment
  const uint32_t slot =
      static_cast<uint32_t>((addr - it->first) / (64u << seg.cls));
  uint64_t& word = seg.dead[slot / 64];
  const uint64_t bit = 1ull << (slot % 64);
  if (word & bit) return 0;  // idempotent (GC + delete can race benignly)
  word |= bit;
  seg.dead_count++;
  vlog_retires_++;
  if (dmsan::Active()) {
    if (dmsan::Checker* c = dmsan::Find(ms_->simulator())) {
      const uint64_t ext_base =
          it->first + static_cast<uint64_t>(slot) * (64u << seg.cls);
      c->OnVlogRetire(ms_->id(), ext_base,
                      reclaim_ != nullptr ? reclaim_->current() : 0);
    }
  }
  VlogMaybeFree(it->first);
  return 1;
}

void ChunkManager::VlogSeal(uint64_t base, uint32_t used) {
  auto it = vlog_.find(base);
  SHERMAN_CHECK(it != vlog_.end());
  SHERMAN_CHECK(used <= it->second.capacity);
  it->second.sealed = true;
  it->second.used = used;
  // Stamp the epoch: an extent appended to this segment belongs to an op
  // whose pin predates the seal, so once every pin at or below this epoch
  // drains, each record here is either leaf-referenced or permanently
  // orphaned — never install-in-flight. Victim selection keys off this.
  it->second.sealed_epoch = reclaim_ != nullptr ? reclaim_->current() : 0;
  VlogMaybeFree(base);
}

void ChunkManager::VlogMaybeFree(uint64_t base) {
  auto it = vlog_.find(base);
  if (it == vlog_.end()) return;
  const VlogSegment& seg = it->second;
  if (!seg.sealed || seg.dead_count < seg.used) return;
  // Every written extent is dead: the whole segment goes back through the
  // node grace list (epoch-protected, recyclable for any same-size alloc).
  const uint32_t seg_bytes = seg.seg_bytes;
  vlog_.erase(it);
  vlog_segments_freed_++;
  FreeNode(base, seg_bytes);
}

uint64_t ChunkManager::VlogVictim(uint64_t min_dead_permille) {
  for (auto& [base, seg] : vlog_) {
    if (!seg.sealed || seg.claimed || seg.used == 0) continue;
    // Grace gate: a record is appended BEFORE its leaf slot is published
    // (the extent is private until then), and the segment can be sealed
    // in that window by a concurrent rotation or a GC pre-seal. Handing
    // such a segment to GC would let the "no leaf references this record"
    // check retire an extent whose install is merely in flight — a
    // dangling pointer once the segment drains and recycles. Only offer
    // segments whose seal predates every live pin: then every record is
    // either referenced or a true orphan.
    if (reclaim_ != nullptr && !reclaim_->SafeToRecycle(seg.sealed_epoch)) {
      continue;
    }
    if (static_cast<uint64_t>(seg.dead_count) * 1000 <
        min_dead_permille * seg.used) {
      continue;
    }
    seg.claimed = true;
    vlog_victims_++;
    return base | (static_cast<uint64_t>(seg.used) << 40) |
           (static_cast<uint64_t>(seg.cls) << 56);
  }
  return 0;
}

uint64_t ChunkManager::VlogMaskWord(uint64_t base, uint32_t word) const {
  auto it = vlog_.find(base);
  if (it == vlog_.end() || word >= it->second.dead.size()) return 0;
  return it->second.dead[word];
}

uint64_t ChunkManager::SweepLocks(uint16_t owner_tag) {
  SHERMAN_CHECK(owner_tag != 0);
  // Scan both lock tables (on-chip and the host-memory ablation copy) and
  // release every lane the dead client still owns, regardless of its
  // lease stamp. Writes go through MemoryRegion::Write so any in-flight
  // DMA read of the word observes the release with torn-read fidelity.
  sim::Simulator* sim = ms_->simulator();
  uint64_t swept = 0;
  const uint8_t zero[2] = {0, 0};
  struct Glt {
    rdma::MemoryRegion* region;
    uint64_t base;
  } tables[2] = {{&ms_->device(), 0}, {&ms_->host(), kHostGltOffset}};
  for (const Glt& t : tables) {
    for (uint32_t i = 0; i < kLocksPerMs; i++) {
      const uint64_t off = t.base + static_cast<uint64_t>(i) * kLockBytes;
      // Lane low byte = owner tag (lock_table.h encoding).
      if (t.region->raw(off)[0] == static_cast<uint8_t>(owner_tag)) {
        t.region->Write(sim->now(), off, zero, sizeof(zero));
        swept++;
      }
    }
  }
  // The scan touches 2 x 256 KB of lock words; charge the wimpy memory
  // thread for the extra work beyond its standard service slot.
  ms_->ChargeMemoryThread(20'000);
  if (dmsan::Active()) {
    if (dmsan::Checker* c = dmsan::Find(ms_->simulator())) {
      c->OnLanesSwept(ms_->id(), owner_tag);
    }
  }
  return swept;
}

}  // namespace sherman
