#include "alloc/chunk_manager.h"

#include "util/logging.h"

namespace sherman {

ChunkManager::ChunkManager(rdma::MemoryServer* ms, const ReclaimEpoch* reclaim)
    : ms_(ms), reclaim_(reclaim) {
  const uint64_t size = ms->host().size();
  SHERMAN_CHECK_MSG(size > kChunkAreaOffset + kChunkSize,
                    "MS memory too small for chunk area");
  next_fresh_ = kChunkAreaOffset;
  end_ = size - (size - kChunkAreaOffset) % kChunkSize;
  total_chunks_ = (end_ - kChunkAreaOffset) / kChunkSize;

  ms->set_rpc_handler([this](uint64_t opcode, uint64_t arg, uint64_t arg2,
                             uint16_t) {
    switch (opcode) {
      case kRpcAllocChunk:
        return AllocChunk();
      case kRpcFreeChunk:
        FreeChunk(arg);
        return uint64_t{0};
      case kRpcFreeNode:
        FreeNode(arg, static_cast<uint32_t>(arg2));
        return uint64_t{0};
      case kRpcAllocNode:
        return AllocNode(static_cast<uint32_t>(arg));
      default:
        SHERMAN_CHECK_MSG(false, "unknown RPC opcode %llu",
                          static_cast<unsigned long long>(opcode));
        return uint64_t{0};
    }
  });
}

uint64_t ChunkManager::AllocChunk() {
  uint64_t offset = 0;
  if (!free_list_.empty()) {
    offset = free_list_.back();
    free_list_.pop_back();
  } else if (next_fresh_ + kChunkSize <= end_) {
    offset = next_fresh_;
    next_fresh_ += kChunkSize;
  } else {
    return 0;  // exhausted
  }
  allocated_++;
  return offset;
}

void ChunkManager::FreeChunk(uint64_t offset) {
  SHERMAN_CHECK(offset >= kChunkAreaOffset && offset < end_);
  SHERMAN_CHECK((offset - kChunkAreaOffset) % kChunkSize == 0);
  SHERMAN_CHECK(allocated_ > 0);
  allocated_--;
  free_list_.push_back(offset);
}

void ChunkManager::FreeNode(uint64_t offset, uint32_t size) {
  SHERMAN_CHECK(offset >= kChunkAreaOffset && offset + size <= end_);
  SHERMAN_CHECK(size > 0 && size < kChunkSize);
  grace_.push_back(
      GraceNode{offset, size, reclaim_ != nullptr ? reclaim_->current() : 0});
  nodes_freed_++;
}

void ChunkManager::SweepGraceList() {
  while (!grace_.empty()) {
    const GraceNode& n = grace_.front();
    if (reclaim_ != nullptr && !reclaim_->SafeToRecycle(n.epoch)) break;
    pool_[n.size].push_back(n.offset);
    pool_bytes_ += n.size;
    grace_.pop_front();
  }
}

uint64_t ChunkManager::AllocNode(uint32_t size) {
  SweepGraceList();
  auto it = pool_.find(size);
  if (it == pool_.end() || it->second.empty()) return 0;
  const uint64_t offset = it->second.back();
  it->second.pop_back();
  pool_bytes_ -= size;
  nodes_recycled_++;
  return offset;
}

}  // namespace sherman
