#include "alloc/chunk_manager.h"

#include "sanitizer/dmsan.h"
#include "util/logging.h"

namespace sherman {

ChunkManager::ChunkManager(rdma::MemoryServer* ms, const ReclaimEpoch* reclaim)
    : ms_(ms), reclaim_(reclaim) {
  const uint64_t size = ms->host().size();
  SHERMAN_CHECK_MSG(size > kChunkAreaOffset + kChunkSize,
                    "MS memory too small for chunk area");
  next_fresh_ = kChunkAreaOffset;
  end_ = size - (size - kChunkAreaOffset) % kChunkSize;
  total_chunks_ = (end_ - kChunkAreaOffset) / kChunkSize;

  ms->set_rpc_handler([this](uint64_t opcode, uint64_t arg, uint64_t arg2,
                             uint16_t) {
    switch (opcode) {
      case kRpcAllocChunk:
        return AllocChunk();
      case kRpcFreeChunk:
        FreeChunk(arg);
        return uint64_t{0};
      case kRpcFreeNode:
        FreeNode(arg, static_cast<uint32_t>(arg2));
        return uint64_t{0};
      case kRpcAllocNode:
        return AllocNode(static_cast<uint32_t>(arg));
      case kRpcSweepLocks:
        return SweepLocks(static_cast<uint16_t>(arg));
      default:
        SHERMAN_CHECK_MSG(false, "unknown RPC opcode %llu",
                          static_cast<unsigned long long>(opcode));
        return uint64_t{0};
    }
  });
}

uint64_t ChunkManager::AllocChunk() {
  uint64_t offset = 0;
  if (!free_list_.empty()) {
    offset = free_list_.back();
    free_list_.pop_back();
  } else if (next_fresh_ + kChunkSize <= end_) {
    offset = next_fresh_;
    next_fresh_ += kChunkSize;
  } else {
    return 0;  // exhausted
  }
  allocated_++;
  return offset;
}

void ChunkManager::FreeChunk(uint64_t offset) {
  SHERMAN_CHECK(offset >= kChunkAreaOffset && offset < end_);
  SHERMAN_CHECK((offset - kChunkAreaOffset) % kChunkSize == 0);
  SHERMAN_CHECK(allocated_ > 0);
  allocated_--;
  free_list_.push_back(offset);
}

void ChunkManager::FreeNode(uint64_t offset, uint32_t size) {
  SHERMAN_CHECK(offset >= kChunkAreaOffset && offset + size <= end_);
  SHERMAN_CHECK(size > 0 && size < kChunkSize);
  // Idempotent: crash recovery re-frees any node whose original free may
  // or may not have landed before the client died (the intent record is
  // cleared only after the free). A node already parked stays parked once.
  if (!parked_.insert(offset).second) {
    duplicate_frees_++;
    return;
  }
  const uint64_t epoch = reclaim_ != nullptr ? reclaim_->current() : 0;
  grace_.push_back(GraceNode{offset, size, epoch});
  nodes_freed_++;
  if (dmsan::Active()) {
    if (dmsan::Checker* c = dmsan::Find(ms_->simulator())) {
      c->OnNodeFreed(ms_->id(), offset, size, epoch);
    }
  }
}

void ChunkManager::SweepGraceList() {
  while (!grace_.empty()) {
    const GraceNode& n = grace_.front();
    if (reclaim_ != nullptr && !reclaim_->SafeToRecycle(n.epoch)) break;
    pool_[n.size].push_back(n.offset);
    pool_bytes_ += n.size;
    grace_.pop_front();
  }
}

uint64_t ChunkManager::AllocNode(uint32_t size) {
  SweepGraceList();
  auto it = pool_.find(size);
  if (it == pool_.end() || it->second.empty()) return 0;
  const uint64_t offset = it->second.back();
  it->second.pop_back();
  pool_bytes_ -= size;
  nodes_recycled_++;
  parked_.erase(offset);
  return offset;
}

uint64_t ChunkManager::SweepLocks(uint16_t owner_tag) {
  SHERMAN_CHECK(owner_tag != 0);
  // Scan both lock tables (on-chip and the host-memory ablation copy) and
  // release every lane the dead client still owns, regardless of its
  // lease stamp. Writes go through MemoryRegion::Write so any in-flight
  // DMA read of the word observes the release with torn-read fidelity.
  sim::Simulator* sim = ms_->simulator();
  uint64_t swept = 0;
  const uint8_t zero[2] = {0, 0};
  struct Glt {
    rdma::MemoryRegion* region;
    uint64_t base;
  } tables[2] = {{&ms_->device(), 0}, {&ms_->host(), kHostGltOffset}};
  for (const Glt& t : tables) {
    for (uint32_t i = 0; i < kLocksPerMs; i++) {
      const uint64_t off = t.base + static_cast<uint64_t>(i) * kLockBytes;
      // Lane low byte = owner tag (lock_table.h encoding).
      if (t.region->raw(off)[0] == static_cast<uint8_t>(owner_tag)) {
        t.region->Write(sim->now(), off, zero, sizeof(zero));
        swept++;
      }
    }
  }
  // The scan touches 2 x 256 KB of lock words; charge the wimpy memory
  // thread for the extra work beyond its standard service slot.
  ms_->ChargeMemoryThread(20'000);
  if (dmsan::Active()) {
    if (dmsan::Checker* c = dmsan::Find(ms_->simulator())) {
      c->OnLanesSwept(ms_->id(), owner_tag);
    }
  }
  return swept;
}

}  // namespace sherman
