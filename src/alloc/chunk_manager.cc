#include "alloc/chunk_manager.h"

#include "util/logging.h"

namespace sherman {

ChunkManager::ChunkManager(rdma::MemoryServer* ms) : ms_(ms) {
  const uint64_t size = ms->host().size();
  SHERMAN_CHECK_MSG(size > kChunkAreaOffset + kChunkSize,
                    "MS memory too small for chunk area");
  next_fresh_ = kChunkAreaOffset;
  end_ = size - (size - kChunkAreaOffset) % kChunkSize;
  total_chunks_ = (end_ - kChunkAreaOffset) / kChunkSize;

  ms->set_rpc_handler([this](uint64_t opcode, uint64_t arg, uint64_t, uint16_t) {
    switch (opcode) {
      case kRpcAllocChunk:
        return AllocChunk();
      case kRpcFreeChunk:
        FreeChunk(arg);
        return uint64_t{0};
      default:
        SHERMAN_CHECK_MSG(false, "unknown RPC opcode %llu",
                          static_cast<unsigned long long>(opcode));
        return uint64_t{0};
    }
  });
}

uint64_t ChunkManager::AllocChunk() {
  uint64_t offset = 0;
  if (!free_list_.empty()) {
    offset = free_list_.back();
    free_list_.pop_back();
  } else if (next_fresh_ + kChunkSize <= end_) {
    offset = next_fresh_;
    next_fresh_ += kChunkSize;
  } else {
    return 0;  // exhausted
  }
  allocated_++;
  return offset;
}

void ChunkManager::FreeChunk(uint64_t offset) {
  SHERMAN_CHECK(offset >= kChunkAreaOffset && offset < end_);
  SHERMAN_CHECK((offset - kChunkAreaOffset) % kChunkSize == 0);
  SHERMAN_CHECK(allocated_ > 0);
  allocated_--;
  free_list_.push_back(offset);
}

}  // namespace sherman
