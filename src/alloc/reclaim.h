// ReclaimEpoch: the fabric-wide grace-period machinery protecting remote
// memory reclamation against in-flight one-sided readers (DEX-style
// epoch-based reclamation).
//
// The hazard: a client resolves a leaf address (from its index cache or a
// parent read), then spends several round trips before its RDMA_READ of
// that address lands. If the node is freed AND recycled in that window,
// the reader observes a node mid-rewrite by the new owner. Every read
// path validates (free flag, fence interval, level, versions/checksum),
// so a recycled node can never produce a wrong answer — but the grace
// period keeps the tombstoned bytes intact until no in-flight operation
// can still hold the address, which turns "retry storm on a torn
// recycled node" into "one clean bounce off a stable tombstone", and is
// what makes the reclamation protocol auditable: reclaim_test asserts no
// node is recycled while an older-epoch reader is still pinned.
//
// Protocol:
//  - every index operation pins the current epoch for its duration
//    (EpochPin RAII in the operation's coroutine frame);
//  - ChunkManager::FreeNode tags each freed node with the epoch current
//    at free time;
//  - a freed node is recycled only when every pinned operation entered
//    at a LATER epoch (freed_epoch < MinActive());
//  - the epoch advances when the last operation of the oldest active
//    epoch retires, so under continuous load the grace window is "all
//    ops in flight at free time have completed".
//
// Single simulator thread; no synchronization needed.
#ifndef SHERMAN_ALLOC_RECLAIM_H_
#define SHERMAN_ALLOC_RECLAIM_H_

#include <cstdint>
#include <map>
#include <set>

namespace sherman {

class ReclaimEpoch {
 public:
  ReclaimEpoch() = default;

  ReclaimEpoch(const ReclaimEpoch&) = delete;
  ReclaimEpoch& operator=(const ReclaimEpoch&) = delete;

  uint64_t current() const { return global_; }

  // Pins the current epoch for one in-flight operation; returns the
  // epoch to pass back to Exit(). `cs` attributes the pin to a compute
  // server (-1 = untracked) so a crashed client's orphaned pins can be
  // released by recovery — without that, a dead client's in-flight ops
  // would hold MinActive() down forever and freeze node recycling
  // fabric-wide.
  uint64_t Enter(int cs = -1) {
    if (cs >= 0) {
      if (dead_.count(cs)) return kDeadEpoch;  // dead clients pin nothing
      by_cs_[cs][global_]++;
    }
    active_[global_]++;
    return global_;
  }

  // Retires an operation pinned at `epoch`. When the oldest active epoch
  // drains, the global epoch advances past it. Pins of a client already
  // released via MarkDead are ignored (their frames may still unwind
  // later — e.g. at test teardown — without corrupting the counts).
  void Exit(uint64_t epoch, int cs = -1);

  // Declares compute server `cs` crashed: releases every pin it holds and
  // makes its future Enter/Exit calls no-ops. Called by the Recoverer
  // AFTER the dead client's in-doubt intents are resolved — the dead
  // client's own pins are exactly what keeps its tombstoned nodes off the
  // recycle pools while recovery still reads them.
  void MarkDead(int cs);

  bool IsDead(int cs) const { return dead_.count(cs) != 0; }

  // Oldest epoch any in-flight operation is still pinned at (the global
  // epoch if none). A node freed at epoch E may be recycled only once
  // MinActive() > E.
  uint64_t MinActive() const {
    return active_.empty() ? global_ : active_.begin()->first;
  }

  bool SafeToRecycle(uint64_t freed_epoch) const {
    return freed_epoch < MinActive();
  }

  // Pins currently held by compute server `cs` (0 if untracked or dead).
  // DMSan's use-after-free rule keys off this: a read of a node past its
  // grace window is only safe under a live pin.
  uint64_t ActivePins(int cs) const {
    const auto it = by_cs_.find(cs);
    if (it == by_cs_.end()) return 0;
    uint64_t n = 0;
    for (const auto& [epoch, count] : it->second) n += count;
    return n;
  }

  uint64_t pinned_ops() const {
    uint64_t n = 0;
    for (const auto& [e, c] : active_) n += c;
    return n;
  }

 private:
  // Sentinel returned by Enter() for dead clients; Exit ignores it.
  static constexpr uint64_t kDeadEpoch = ~0ull;

  void AdvancePastDrained();

  uint64_t global_ = 1;  // epoch 0 is "freed before any pin existed"
  std::map<uint64_t, uint64_t> active_;  // epoch -> in-flight op count
  std::map<int, std::map<uint64_t, uint64_t>> by_cs_;  // cs -> epoch -> count
  std::set<int> dead_;
};

// RAII pin for one operation. Safe to construct with a null domain (unit
// tests drive ChunkManager without a system); coroutine frames destroy
// locals deterministically at co_return, so the pin spans exactly the
// operation.
class EpochPin {
 public:
  explicit EpochPin(ReclaimEpoch* domain, int cs = -1)
      : domain_(domain),
        cs_(cs),
        epoch_(domain != nullptr ? domain->Enter(cs) : 0) {}
  ~EpochPin() {
    if (domain_ != nullptr) domain_->Exit(epoch_, cs_);
  }

  EpochPin(const EpochPin&) = delete;
  EpochPin& operator=(const EpochPin&) = delete;

 private:
  ReclaimEpoch* domain_;
  int cs_;
  uint64_t epoch_;
};

}  // namespace sherman

#endif  // SHERMAN_ALLOC_RECLAIM_H_
