// Memory layout of a memory server.
//
// Host DRAM:
//   [0, kMetaBytes)                     meta region (root pointer on MS 0)
//   [kMetaBytes, +kHostGltBytes)        global lock table when HOCL runs in
//                                       host-memory mode (FG baseline /
//                                       ablation without on-chip locks)
//   [kChunkAreaOffset, ...)             8 MB chunks handed to compute servers
//
// NIC on-chip device memory:
//   [0, kHostGltBytes)                  global lock table in on-chip mode
#ifndef SHERMAN_ALLOC_LAYOUT_H_
#define SHERMAN_ALLOC_LAYOUT_H_

#include <cstdint>

namespace sherman {

// Locks per memory server: 131072 16-bit locks fill the 256 KB of on-chip
// memory exposed by ConnectX-5 (§4.3).
inline constexpr uint32_t kLocksPerMs = 131072;
inline constexpr uint64_t kLockBytes = 2;  // masked CAS on a 16-bit lane

inline constexpr uint64_t kMetaBytes = 4096;
inline constexpr uint64_t kHostGltOffset = kMetaBytes;
inline constexpr uint64_t kHostGltBytes = kLocksPerMs * kLockBytes;  // 256 KB
inline constexpr uint64_t kChunkAreaOffset = kHostGltOffset + kHostGltBytes;

// Chunk granularity of the two-stage allocator (§4.2.4).
inline constexpr uint64_t kChunkSize = 8ull << 20;

// Location of the 8-byte root pointer (packed GlobalAddress) and the 8-byte
// tree level word in MS 0's meta region.
inline constexpr uint64_t kRootPointerOffset = 64;

// RPC opcodes served by the memory thread.
inline constexpr uint64_t kRpcAllocChunk = 1;
inline constexpr uint64_t kRpcFreeChunk = 2;
// Node-granularity reclamation (leaf merges, migration tombstones): the
// freed node parks on the MS's epoch-keyed grace list and is handed back
// out via kRpcAllocNode only after the reclamation epoch has passed it.
inline constexpr uint64_t kRpcFreeNode = 3;   // arg = offset, arg2 = size
inline constexpr uint64_t kRpcAllocNode = 4;  // arg = size; 0 if none ready

}  // namespace sherman

#endif  // SHERMAN_ALLOC_LAYOUT_H_
