// Memory layout of a memory server.
//
// Host DRAM:
//   [0, kMetaBytes)                     meta region (root pointer on MS 0)
//   [kMetaBytes, +kHostGltBytes)        global lock table when HOCL runs in
//                                       host-memory mode (FG baseline /
//                                       ablation without on-chip locks)
//   [kChunkAreaOffset, ...)             8 MB chunks handed to compute servers
//
// NIC on-chip device memory:
//   [0, kHostGltBytes)                  global lock table in on-chip mode
#ifndef SHERMAN_ALLOC_LAYOUT_H_
#define SHERMAN_ALLOC_LAYOUT_H_

#include <cstdint>

namespace sherman {

// Locks per memory server: 131072 16-bit locks fill the 256 KB of on-chip
// memory exposed by ConnectX-5 (§4.3).
inline constexpr uint32_t kLocksPerMs = 131072;
inline constexpr uint64_t kLockBytes = 2;  // masked CAS on a 16-bit lane

inline constexpr uint64_t kMetaBytes = 4096;
inline constexpr uint64_t kHostGltOffset = kMetaBytes;
inline constexpr uint64_t kHostGltBytes = kLocksPerMs * kLockBytes;  // 256 KB

// Crash-recovery metadata (host DRAM on MS 0; the region is reserved in
// every MS's layout so chunk-area geometry stays uniform):
//  - per-client INTENT SLAB: before its first remote write, every
//    multi-write structural op (split / merge / migration flip) publishes
//    a 64-byte intent record into a slot of its client's slab and clears
//    it on completion; a survivor's Recoverer replays or rolls back any
//    in-doubt record after the client dies (src/recover/).
//  - per-client RECOVERY CLAIM word: survivors CAS-claim a dead client
//    before recovering it, so exactly one recoverer acts at a time; the
//    claim carries a lease stamp so a crashed recoverer's claim can
//    itself be re-claimed.
inline constexpr uint64_t kIntentSlotBytes = 64;
inline constexpr uint32_t kIntentSlotsPerClient = 16;
// Matches the lock layer's owner-byte capacity (tags 1..255, i.e. cs ids
// 0..254), so any fleet the locks can serve gets crash tolerance too.
inline constexpr uint32_t kMaxIntentClients = 255;
inline constexpr uint64_t kIntentSlabOffset = kHostGltOffset + kHostGltBytes;
inline constexpr uint64_t kIntentSlabBytes =
    kIntentSlotBytes * kIntentSlotsPerClient * kMaxIntentClients;  // 64 KB
inline constexpr uint64_t kRecoveryClaimOffset =
    kIntentSlabOffset + kIntentSlabBytes;
inline constexpr uint64_t kRecoveryClaimBytes = 8 * kMaxIntentClients;

// LEAF-HINT SIDECAR (per MS, host DRAM): a compact sorted table mapping
// lo fence key -> (packed leaf address, fingerprint) for leaves homed on
// this MS. Clients RDMA-READ the header + entry array into a local mirror
// and serve cold point lookups with ONE fingerprint-validated leaf READ,
// falling back to full B-tree traversal on miss/stale entries — hints are
// purely advisory, never trusted for correctness (src/cache/leaf_hints.h).
//   header (64 B): [0,8) generation, [8,16) live entry count
//   entries:       kHintSlots x 24 B {lo key, packed addr, fingerprint}
inline constexpr uint64_t kHintAreaOffset =
    (kRecoveryClaimOffset + kRecoveryClaimBytes + 63) & ~uint64_t{63};
inline constexpr uint64_t kHintHeaderBytes = 64;
inline constexpr uint64_t kHintSlotBytes = 24;
// Sized for the bench-scale tree: 4 M keys pack into ~90 K leaves spread
// over the MS fleet, so 64 K slots per MS keeps the directory complete
// (a client refresh only READs the live prefix, not the whole area).
// Overflow is tolerated — entries drop (dropped_full) and lookups fall
// back to traversal — but every dropped entry turns the mirror
// predecessor left of it into a wrong hint, costing a wasted READ.
inline constexpr uint32_t kHintSlots = 65536;
inline constexpr uint64_t kHintAreaBytes =
    kHintHeaderBytes + kHintSlotBytes * kHintSlots;  // 1.5 MB + 64 B

inline constexpr uint64_t kChunkAreaOffset =
    (kHintAreaOffset + kHintAreaBytes + 4095) & ~uint64_t{4095};

// Chunk granularity of the two-stage allocator (§4.2.4).
inline constexpr uint64_t kChunkSize = 8ull << 20;

// Location of the 8-byte root pointer (packed GlobalAddress) and the 8-byte
// tree level word in MS 0's meta region.
inline constexpr uint64_t kRootPointerOffset = 64;

// RPC opcodes served by the memory thread.
inline constexpr uint64_t kRpcAllocChunk = 1;
inline constexpr uint64_t kRpcFreeChunk = 2;
// Node-granularity reclamation (leaf merges, migration tombstones): the
// freed node parks on the MS's epoch-keyed grace list and is handed back
// out via kRpcAllocNode only after the reclamation epoch has passed it.
inline constexpr uint64_t kRpcFreeNode = 3;   // arg = offset, arg2 = size
inline constexpr uint64_t kRpcAllocNode = 4;  // arg = size; 0 if none ready
// Crash recovery: clears every global-lock-table lane (device and host
// GLT) owned by the dead client's tag. arg = owner tag. Returns the
// number of lanes released. Issued by a survivor's Recoverer after the
// dead client's in-doubt intents have been read (the MS-side memory
// thread scans its on-chip table far cheaper than 131072 remote READs).
inline constexpr uint64_t kRpcSweepLocks = 5;
// Value-log segment bookkeeping (src/vlog/): segments are CS-allocated
// (via the ordinary chunk/node path) but the OWNING MS is the liveness
// authority — every extent retire lands here, so owner and foreign
// clients cannot race a free.
//  - Register: announce a fresh segment. arg = base offset,
//    arg2 = size-class index.
//  - Retire: mark the extent holding `arg` (any offset inside it) dead.
//    A sealed segment whose extents are all dead is freed to the grace
//    list by the MS itself. Idempotent. Returns 1 if a slot went dead.
//  - Seal: the appender is done with the segment. arg = base,
//    arg2 = extents written.
//  - Victim: returns base | (class << 56) of a sealed segment whose dead
//    fraction >= arg permille (0 = none); the segment is marked claimed
//    so concurrent GC passes do not double-relocate.
//  - Mask: arg = base, arg2 = word index; returns the 64-bit dead bitmap
//    word (GC reads liveness cheaply instead of guessing).
inline constexpr uint64_t kRpcVlogRegister = 6;
inline constexpr uint64_t kRpcVlogRetire = 7;
inline constexpr uint64_t kRpcVlogSeal = 8;
inline constexpr uint64_t kRpcVlogVictim = 9;
inline constexpr uint64_t kRpcVlogMask = 10;
// Leaf-hint sidecar maintenance (src/cache/leaf_hints.h). Structural ops
// publish a leaf's (lo fence, address) to the leaf's HOME MS and must
// invalidate BEFORE the leaf's kRpcFreeNode lands (DMSan enforces the
// ordering: a node may never be freed while a hint still maps to it).
//  - Publish: arg = lo fence key, arg2 = packed leaf GlobalAddress.
//    Returns 1 if stored, 0 if the table was full (entry dropped —
//    advisory, so dropping is safe).
//  - Invalidate: arg = packed leaf GlobalAddress. Removes every entry
//    pointing at that address; returns the number removed. Idempotent.
inline constexpr uint64_t kRpcHintPublish = 11;
inline constexpr uint64_t kRpcHintInvalidate = 12;

}  // namespace sherman

#endif  // SHERMAN_ALLOC_LAYOUT_H_
