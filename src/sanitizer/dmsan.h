// DMSan: a remote-memory race detector and protocol-invariant sanitizer
// for the simulated RDMA fabric.
//
// Sherman's correctness rests on protocol discipline no compiler checks:
// every remote write to a live tree node must happen under that node's
// held (and unexpired) HOCL lock lane; freed nodes must not be touched
// until their reclamation epoch retires; multi-write structural ops must
// publish an intent record before their first covered write; torn
// versioned reads must be re-validated before their bytes are consumed;
// and the lock table / root pointer may only be mutated through the
// blessed HoclClient / root-swap APIs. ASan catches *host* memory bugs —
// DMSan watches the *remote* address space for exactly the class of bug
// PRs 3-5 kept finding by hand.
//
// Mechanism: a pure observer keyed off the single-threaded simulator. The
// Qp layer reports every work request at post time (program order), and
// the protocol layers feed ownership transitions (lock acquire, node
// alloc/free/publish, lane sweeps, MS-side RPC mutations). The checker
// maintains shadow state per remote address range — allocation state,
// owning lock lane + lease stamp, open intent slots, and a taint bit per
// unvalidated read buffer — and verifies five rule classes:
//
//   V1  remote write to a live node without holding its lock lane, or
//       with an expired lease (write-after-steal), or to another CS's
//       private (not yet published) node;
//   V2  read/write of a freed-or-grace-parked node by a client holding
//       no protective epoch pin (remote use-after-free);
//   V3  structural write tagged with an intent slot that is not
//       currently published (first write before publish, or a write
//       after the slot cleared);
//   V4  a torn/versioned lock-free read whose buffer is consumed as a
//       remote-write source without version re-validation;
//   V5  a mutation of a lock-table word or the root pointer that
//       bypasses the HoclClient / root-swap APIs;
//   V6  a node freed while a leaf-hint entry still maps to it (the hint
//       sidecar must invalidate BEFORE the free, or a hinted lookup could
//       land a READ on recycled memory without fence/role protection).
//
// DMSan never touches simulated state: runs with the checker attached are
// simulation-identical to runs without it (determinism_test relies on
// this). Reports carry both racing actors and a flight-recorder dump of
// their trace rings; by default a violation hard-fails the process
// (SHERMAN_CHECK), which tests can downgrade to recorded findings.
//
// Switching: compile-time default via -DSHERMAN_DMSAN=ON (CMake ->
// SHERMAN_DMSAN_DEFAULT), overridable at runtime with SHERMAN_DMSAN=1/0
// in the environment. ShermanSystem attaches a checker to its simulator
// when enabled; raw-fabric unit tests construct no system and are
// unchecked.
#ifndef SHERMAN_SANITIZER_DMSAN_H_
#define SHERMAN_SANITIZER_DMSAN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lock/hocl.h"
#include "lock/lock_table.h"
#include "obs/trace.h"
#include "rdma/global_address.h"
#include "rdma/verbs.h"
#include "sim/simulator.h"

namespace sherman {
class ReclaimEpoch;
}

namespace sherman::dmsan {

// One detected protocol violation.
struct Violation {
  int rule = 0;  // 1..5 (V1..V5)
  std::string message;
  rdma::GlobalAddress addr;   // remote address at fault
  int actor_cs = -1;          // compute server issuing the access
  int other_actor = -1;       // second party (lane owner, node owner), -1 none
  uint64_t sim_time = 0;
};

class Checker {
 public:
  struct Config {
    uint32_t node_size = 0;
    HoclOptions lock;            // lane hash mode + lease arithmetic
    const ReclaimEpoch* reclaim = nullptr;
    obs::Tracer* tracer = nullptr;
    sim::Simulator* sim = nullptr;
  };

  explicit Checker(Config cfg);

  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  // --- feed: allocation state ---------------------------------------------
  // A node-sized region became private to `cs` (bump alloc, recycled node,
  // CS-local free-bin reuse re-entering circulation).
  void OnNodeAllocated(int cs, rdma::GlobalAddress addr, uint32_t size);
  // A private node became reachable from the tree (split commit, new root
  // install, migration child swap, bulk load): writes now require the lane.
  void PublishNode(rdma::GlobalAddress addr, uint8_t level);
  // A node parked on `ms`'s grace list at `epoch` (kRpcFreeNode or the
  // MS-side merge); stays kFreed until recycled via OnNodeAllocated.
  // Reports V6 if a leaf-hint entry still maps to the node.
  void OnNodeFreed(int ms, uint64_t offset, uint32_t size, uint64_t epoch);

  // --- feed: leaf-hint sidecar (src/cache/leaf_hints.h) --------------------
  // The MS directory published / dropped a hint entry pointing at `addr`.
  void OnHintPublished(rdma::GlobalAddress addr);
  void OnHintInvalidated(rdma::GlobalAddress addr);

  // --- feed: lock state ----------------------------------------------------
  // The masked-CAS acquire succeeded (called at completion, so the shadow
  // held-window is a subset of the actual held-window).
  void OnLockAcquired(int cs, const GlobalLockRef& ref, uint16_t lane_value);
  // Explicit release for the FAA-release ablation (the arithmetic release
  // cannot be decoded from the posted WR). Write-releases are decoded.
  void OnLockReleased(int cs, const GlobalLockRef& ref);
  // kRpcSweepLocks released every lane owned by `owner_tag` on `ms`.
  void OnLanesSwept(int ms, uint16_t owner_tag);
  // `cs` was declared dead (crash injection). Its in-flight shadow state
  // goes conservative: private nodes become live (a posted-but-unacked
  // commit batch may have published them; survivors then write them under
  // fresh locks) and all taints drop (the dead coroutines' heap buffers
  // can be recycled at any address).
  void OnClientDead(int cs);

  // --- feed: value-log extents (src/vlog/) ----------------------------------
  // `cs` registered a vlog segment at [base, base+seg_bytes) on `ms`.
  // (The region's node shadow already exists via OnNodeAllocated; this
  // routes accesses inside it through the extent rules below.)
  void OnVlogSegment(int cs, rdma::GlobalAddress base, uint32_t seg_bytes,
                     uint32_t cls);
  // `cs` is about to write the extent [addr, addr+bytes) (private append).
  void OnVlogAppend(int cs, rdma::GlobalAddress addr, uint32_t bytes);
  // The append landed: the extent is immutable and readable fabric-wide.
  void OnVlogPublish(rdma::GlobalAddress addr);
  // The extent went dead at `epoch` (delete/update/GC relocation); reads
  // past the grace window without an epoch pin are V2, writes are V2.
  void OnVlogRetire(int ms, uint64_t offset, uint64_t epoch);

  // --- feed: MS-side executor ---------------------------------------------
  // The RPC executor on `ms` is about to mutate `node` through host memory
  // (it declines locked nodes, so a shadow-held lane here is a real race).
  void OnRpcMutate(int ms, rdma::GlobalAddress node);

  // --- feed: validation ----------------------------------------------------
  // A lock-free read of [buf, buf+len) passed version/checksum validation.
  void NoteValidated(const void* buf, uint32_t len);

  // --- check: every posted work request ------------------------------------
  // Called from Qp::PostBatch / PostReadBatch in program order at post
  // time (single-threaded simulator: post order == decision order).
  void OnWr(int cs, const rdma::WorkRequest& wr);

  // --- reports -------------------------------------------------------------
  void set_abort_on_violation(bool abort) { abort_on_violation_ = abort; }
  const std::vector<Violation>& findings() const { return findings_; }
  void ClearFindings() { findings_.clear(); }
  uint64_t checked_wrs() const { return checked_wrs_; }
  uint64_t tracked_nodes() const;

 private:
  enum class NodeState : uint8_t { kPrivate, kLive, kFreed };
  struct NodeShadow {
    NodeState state = NodeState::kPrivate;
    int owner_cs = -1;       // kPrivate: owning CS
    uint8_t level = 0;       // kLive
    bool hinted = false;     // a leaf-hint entry maps to this node
    uint32_t size = 0;
    uint64_t freed_epoch = 0;  // kFreed
  };
  struct LaneShadow {
    uint16_t lane = 0;  // 0 = free
  };
  struct Taint {
    rdma::GlobalAddress src;
    uintptr_t begin = 0;
    uintptr_t end = 0;
    uint64_t at = 0;  // sim time of the read post
  };
  enum class VExtState : uint8_t { kAppending, kLive, kDead };
  struct VExtShadow {
    VExtState state = VExtState::kAppending;
    int owner_cs = -1;
    uint32_t size = 0;
    uint64_t dead_epoch = 0;
  };
  struct VSegShadow {
    uint32_t seg_bytes = 0;
    uint32_t cls = 0;
    int owner_cs = -1;
  };

  // Shadow lookups.
  NodeShadow* FindNode(uint16_t ms, uint64_t offset);
  VExtShadow* FindVExtent(uint16_t ms, uint64_t offset);
  uint64_t NodeBase(uint16_t ms, const NodeShadow* n) const;
  uint64_t LaneKey(const GlobalLockRef& ref) const {
    return (static_cast<uint64_t>(ref.ms) << 33) |
           (static_cast<uint64_t>(ref.space == rdma::MemorySpace::kDevice)
            << 32) |
           ref.index;
  }

  bool LaneExpired(uint16_t lane) const;  // replicates HoclClient's math
  bool HoldsLane(int cs, rdma::GlobalAddress node_base, uint16_t* lane_out,
                 int* owner_out) const;
  bool InLockRegion(const rdma::WorkRequest& wr) const;
  bool OnRootWord(const rdma::WorkRequest& wr) const;

  void CheckWrite(int cs, const rdma::WorkRequest& wr);
  void CheckRead(int cs, const rdma::WorkRequest& wr);
  void DecodeLaneWrite(int cs, const rdma::WorkRequest& wr);
  void DecodeIntentWrite(const rdma::WorkRequest& wr);
  void AddTaint(int cs, const rdma::WorkRequest& wr);
  void DropTaintOverlapping(uintptr_t begin, uintptr_t end);

  void Report(int rule, rdma::GlobalAddress addr, int actor, int other,
              std::string message);

  Config cfg_;
  bool abort_on_violation_ = true;

  // ms -> (node base offset -> shadow). Ranges never overlap.
  std::map<uint16_t, std::map<uint64_t, NodeShadow>> nodes_;
  // ms -> (segment base -> shadow) and (extent offset -> shadow).
  std::map<uint16_t, std::map<uint64_t, VSegShadow>> vsegs_;
  std::map<uint16_t, std::map<uint64_t, VExtShadow>> vexts_;
  std::map<uint64_t, LaneShadow> lanes_;
  // cs -> bitmap of published intent slots (decoded from slab writes).
  std::map<int, uint32_t> intent_live_;
  std::vector<Taint> taints_;

  std::vector<Violation> findings_;
  uint64_t checked_wrs_ = 0;
};

// --- registry ---------------------------------------------------------------
// Checkers attach per simulator; the zero-cost fast path for unchecked
// builds/runs is a single global counter test.
extern int g_active_count;
inline bool Active() { return g_active_count > 0; }

void Attach(sim::Simulator* sim, Checker* checker);
void Detach(sim::Simulator* sim);
Checker* Find(sim::Simulator* sim);

// Taint clearing from contexts without a simulator pointer (free-function
// parsers): forwards to every attached checker.
void NoteValidatedAll(const void* buf, uint32_t len);

// SHERMAN_DMSAN=1/0 in the environment overrides the compile-time default
// (-DSHERMAN_DMSAN=ON -> SHERMAN_DMSAN_DEFAULT=1).
bool DefaultEnabled();

}  // namespace sherman::dmsan

#endif  // SHERMAN_SANITIZER_DMSAN_H_
