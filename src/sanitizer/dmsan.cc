#include "sanitizer/dmsan.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "alloc/layout.h"
#include "alloc/reclaim.h"
#include "util/logging.h"

namespace sherman::dmsan {

namespace {
// A taint older than this is stale: its buffer has left the op that read
// it (simulated reads complete and validate within a few microseconds),
// and heap reuse could otherwise alias an old taint onto an unrelated
// staging buffer. Evaluated lazily against the sim clock at check time,
// so it is deterministic.
constexpr uint64_t kTaintTtlNs = 100'000;

const char* RuleName(int rule) {
  switch (rule) {
    case 1: return "V1 unlocked-or-stale-lease remote write";
    case 2: return "V2 remote use-after-free";
    case 3: return "V3 crash-window (intent) violation";
    case 4: return "V4 unvalidated torn read consumed";
    case 5: return "V5 lock/root mutation bypassing blessed API";
    case 6: return "V6 node freed while a leaf hint maps to it";
    default: return "V? unknown";
  }
}
}  // namespace

Checker::Checker(Config cfg) : cfg_(cfg) {
  SHERMAN_CHECK(cfg_.node_size > 0);
  SHERMAN_CHECK(cfg_.sim != nullptr);
}

uint64_t Checker::tracked_nodes() const {
  uint64_t n = 0;
  for (const auto& [ms, m] : nodes_) n += m.size();
  return n;
}

Checker::NodeShadow* Checker::FindNode(uint16_t ms, uint64_t offset) {
  auto mit = nodes_.find(ms);
  if (mit == nodes_.end()) return nullptr;
  auto it = mit->second.upper_bound(offset);
  if (it == mit->second.begin()) return nullptr;
  --it;
  if (offset >= it->first + it->second.size) return nullptr;
  return &it->second;
}

bool Checker::LaneExpired(uint16_t lane) const {
  // Replicates HoclClient::LaneExpired / LeaseStampNow so the checker
  // agrees with the protocol about what "expired" means.
  const uint16_t stamp = LockLaneStamp(lane);
  if (LockLaneOwner(lane) == 0 || stamp == 0) return false;
  if (!cfg_.lock.leases || cfg_.lock.release_with_faa) return false;
  const uint64_t period = static_cast<uint64_t>(cfg_.sim->now()) /
                          static_cast<uint64_t>(cfg_.lock.lease_period_ns);
  const uint16_t now = static_cast<uint16_t>(period % 255) + 1;
  const uint16_t age = static_cast<uint16_t>((now - stamp + 255) % 255);
  return age >= cfg_.lock.lease_expiry_periods && age <= 127;
}

bool Checker::HoldsLane(int cs, rdma::GlobalAddress node_base,
                        uint16_t* lane_out, int* owner_out) const {
  const GlobalLockRef ref = LockFor(node_base, cfg_.lock.onchip);
  const auto it = lanes_.find(LaneKey(ref));
  const uint16_t lane = it != lanes_.end() ? it->second.lane : 0;
  if (lane_out != nullptr) *lane_out = lane;
  const uint16_t owner = LockLaneOwner(lane);
  if (owner_out != nullptr) *owner_out = owner == 0 ? -1 : owner - 1;
  return owner != 0 && owner == static_cast<uint16_t>(cs) + 1;
}

bool Checker::InLockRegion(const rdma::WorkRequest& wr) const {
  if (wr.space == rdma::MemorySpace::kDevice) {
    return wr.remote.offset < kHostGltBytes;  // whole on-chip region is GLT
  }
  return wr.remote.offset >= kHostGltOffset &&
         wr.remote.offset < kHostGltOffset + kHostGltBytes;
}

bool Checker::OnRootWord(const rdma::WorkRequest& wr) const {
  if (wr.space != rdma::MemorySpace::kHost || wr.remote.node != 0) return false;
  const uint64_t begin = wr.remote.offset;
  const uint64_t end = begin + wr.length;
  return begin < kRootPointerOffset + 8 && end > kRootPointerOffset;
}

// --- feed ------------------------------------------------------------------

void Checker::OnNodeAllocated(int cs, rdma::GlobalAddress addr,
                              uint32_t size) {
  auto& per_ms = nodes_[addr.node];
  // Drop any stale shadow overlapping the range (a recycled node re-enters
  // circulation; allocation geometry keeps live ranges disjoint).
  auto it = per_ms.lower_bound(addr.offset);
  if (it != per_ms.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.size > addr.offset) per_ms.erase(prev);
  }
  while (true) {
    it = per_ms.lower_bound(addr.offset);
    if (it == per_ms.end() || it->first >= addr.offset + size) break;
    per_ms.erase(it);
  }
  NodeShadow s;
  s.state = NodeState::kPrivate;
  s.owner_cs = cs;
  s.size = size;
  per_ms[addr.offset] = s;
  // A recycled vlog segment can re-enter circulation as anything; its
  // extent/segment shadows are stale the moment the region is re-handed.
  if (!vexts_.empty() || !vsegs_.empty()) {
    auto drop = [&](auto& per_ms_map) {
      auto mit = per_ms_map.find(addr.node);
      if (mit == per_ms_map.end()) return;
      auto vit = mit->second.lower_bound(addr.offset);
      while (vit != mit->second.end() && vit->first < addr.offset + size) {
        vit = mit->second.erase(vit);
      }
    };
    drop(vexts_);
    drop(vsegs_);
  }
}

void Checker::PublishNode(rdma::GlobalAddress addr, uint8_t level) {
  NodeShadow* n = FindNode(addr.node, addr.offset);
  if (n == nullptr) {
    NodeShadow s;
    s.size = cfg_.node_size;
    nodes_[addr.node][addr.offset] = s;
    n = FindNode(addr.node, addr.offset);
  }
  n->state = NodeState::kLive;
  n->level = level;
  n->owner_cs = -1;
}

void Checker::OnNodeFreed(int ms, uint64_t offset, uint32_t size,
                          uint64_t epoch) {
  NodeShadow* n = FindNode(static_cast<uint16_t>(ms), offset);
  if (n == nullptr) {
    NodeShadow s;
    s.size = size;
    nodes_[static_cast<uint16_t>(ms)][offset] = s;
    n = FindNode(static_cast<uint16_t>(ms), offset);
  }
  if (n->hinted) {
    const rdma::GlobalAddress addr(static_cast<uint16_t>(ms), offset);
    std::ostringstream os;
    os << "node " << addr.ToString()
       << " freed while a leaf-hint entry still maps to it (the hint "
          "sidecar must invalidate before the free)";
    n->hinted = false;
    Report(6, addr, -1, -1, os.str());
  }
  n->state = NodeState::kFreed;
  n->freed_epoch = epoch;
  n->owner_cs = -1;
}

void Checker::OnHintPublished(rdma::GlobalAddress addr) {
  NodeShadow* n = FindNode(addr.node, addr.offset);
  if (n == nullptr) {
    // Bulk-load seeding can run before the loader's PublishNode feed on
    // configurations without a checker-visible allocation; track lazily.
    NodeShadow s;
    s.state = NodeState::kLive;
    s.size = cfg_.node_size;
    nodes_[addr.node][addr.offset] = s;
    n = FindNode(addr.node, addr.offset);
  }
  n->hinted = true;
}

void Checker::OnHintInvalidated(rdma::GlobalAddress addr) {
  NodeShadow* n = FindNode(addr.node, addr.offset);
  if (n != nullptr) n->hinted = false;
}

Checker::VExtShadow* Checker::FindVExtent(uint16_t ms, uint64_t offset) {
  auto mit = vexts_.find(ms);
  if (mit == vexts_.end()) return nullptr;
  auto it = mit->second.upper_bound(offset);
  if (it == mit->second.begin()) return nullptr;
  --it;
  if (offset >= it->first + it->second.size) return nullptr;
  return &it->second;
}

void Checker::OnVlogSegment(int cs, rdma::GlobalAddress base,
                            uint32_t seg_bytes, uint32_t cls) {
  // A recycled region may carry stale extent shadows from its previous
  // life as a segment; drop anything overlapping.
  auto& per_ms = vexts_[base.node];
  auto it = per_ms.lower_bound(base.offset);
  while (it != per_ms.end() && it->first < base.offset + seg_bytes) {
    it = per_ms.erase(it);
  }
  VSegShadow s;
  s.seg_bytes = seg_bytes;
  s.cls = cls;
  s.owner_cs = cs;
  vsegs_[base.node][base.offset] = s;
}

void Checker::OnVlogAppend(int cs, rdma::GlobalAddress addr, uint32_t bytes) {
  VExtShadow s;
  s.state = VExtState::kAppending;
  s.owner_cs = cs;
  s.size = bytes;
  vexts_[addr.node][addr.offset] = s;
}

void Checker::OnVlogPublish(rdma::GlobalAddress addr) {
  VExtShadow* e = FindVExtent(addr.node, addr.offset);
  if (e == nullptr) return;
  e->state = VExtState::kLive;
  e->owner_cs = -1;
}

void Checker::OnVlogRetire(int ms, uint64_t offset, uint64_t epoch) {
  VExtShadow* e = FindVExtent(static_cast<uint16_t>(ms), offset);
  if (e == nullptr) return;
  e->state = VExtState::kDead;
  e->dead_epoch = epoch;
}

void Checker::OnLockAcquired(int cs, const GlobalLockRef& ref,
                             uint16_t lane_value) {
  (void)cs;
  lanes_[LaneKey(ref)].lane = lane_value;
}

void Checker::OnLockReleased(int cs, const GlobalLockRef& ref) {
  // Conditional: this arrives at completion time, after the release
  // actually applied, so another CS may already have re-acquired the lane
  // (and updated the shadow) in the response-latency window.
  const auto it = lanes_.find(LaneKey(ref));
  if (it != lanes_.end() &&
      LockLaneOwner(it->second.lane) == static_cast<uint16_t>(cs) + 1) {
    lanes_.erase(it);
  }
}

void Checker::OnLanesSwept(int ms, uint16_t owner_tag) {
  for (auto it = lanes_.begin(); it != lanes_.end();) {
    const uint16_t lane_ms = static_cast<uint16_t>(it->first >> 33);
    if (lane_ms == ms && LockLaneOwner(it->second.lane) == owner_tag) {
      it = lanes_.erase(it);
    } else {
      ++it;
    }
  }
}

void Checker::OnClientDead(int cs) {
  for (auto& [ms, per_ms] : nodes_) {
    for (auto& [off, shadow] : per_ms) {
      if (shadow.state == NodeState::kPrivate && shadow.owner_cs == cs) {
        shadow.state = NodeState::kLive;
        shadow.owner_cs = -1;
      }
    }
  }
  taints_.clear();
}

void Checker::OnRpcMutate(int ms, rdma::GlobalAddress node) {
  // The executor declines locked nodes by reading the actual lane; the
  // shadow-held window [CAS completion, release post] is strictly inside
  // the actual-held window [CAS apply, release apply], so a shadow-held
  // lane here means the decline check and a one-sided writer raced.
  uint16_t lane = 0;
  int owner = -1;
  (void)HoldsLane(/*cs=*/-2, node, &lane, &owner);
  if (owner >= 0) {
    std::ostringstream os;
    os << "MS " << ms << " RPC executor mutating node " << node.node << ":"
       << node.offset << " while lock lane is held by cs " << owner;
    Report(1, node, -1, owner, os.str());
    return;
  }
  NodeShadow* n = FindNode(node.node, node.offset);
  if (n != nullptr && n->state == NodeState::kFreed) {
    std::ostringstream os;
    os << "MS " << ms << " RPC executor mutating freed node " << node.node
       << ":" << node.offset;
    Report(2, node, -1, -1, os.str());
  }
}

void Checker::NoteValidated(const void* buf, uint32_t len) {
  DropTaintOverlapping(reinterpret_cast<uintptr_t>(buf),
                       reinterpret_cast<uintptr_t>(buf) + len);
}

// --- taint -----------------------------------------------------------------

void Checker::DropTaintOverlapping(uintptr_t begin, uintptr_t end) {
  for (auto it = taints_.begin(); it != taints_.end();) {
    if (it->begin < end && it->end > begin) {
      it = taints_.erase(it);
    } else {
      ++it;
    }
  }
}

void Checker::AddTaint(int cs, const rdma::WorkRequest& wr) {
  (void)cs;
  const uintptr_t begin = reinterpret_cast<uintptr_t>(wr.local_buf);
  const uintptr_t end = begin + wr.length;
  DropTaintOverlapping(begin, end);
  // Lazy compaction keeps the list bounded without touching sim state.
  if (taints_.size() > 1024) {
    const uint64_t now = static_cast<uint64_t>(cfg_.sim->now());
    for (auto it = taints_.begin(); it != taints_.end();) {
      if (now - it->at > kTaintTtlNs) {
        it = taints_.erase(it);
      } else {
        ++it;
      }
    }
  }
  Taint t;
  t.src = wr.remote;
  t.begin = begin;
  t.end = end;
  t.at = static_cast<uint64_t>(cfg_.sim->now());
  taints_.push_back(t);
}

// --- checks ----------------------------------------------------------------

void Checker::OnWr(int cs, const rdma::WorkRequest& wr) {
  checked_wrs_++;
  switch (wr.verb) {
    case rdma::Verb::kRead:
      CheckRead(cs, wr);
      return;
    case rdma::Verb::kWrite:
    case rdma::Verb::kCas:
    case rdma::Verb::kMaskedCas:
    case rdma::Verb::kFaa:
      CheckWrite(cs, wr);
      return;
  }
}

void Checker::CheckWrite(int cs, const rdma::WorkRequest& wr) {
  // Lock table: only HoclClient-tagged requests may mutate it (V5); the
  // tagged 2-byte lane writes additionally update the lane shadow.
  if (InLockRegion(wr)) {
    if (wr.origin != rdma::kWrOriginLock) {
      std::ostringstream os;
      os << "cs " << cs << " mutates lock table "
         << (wr.space == rdma::MemorySpace::kDevice ? "(device)" : "(host)")
         << " at " << wr.remote.node << ":" << wr.remote.offset
         << " bypassing HoclClient";
      Report(5, wr.remote, cs, -1, os.str());
      return;
    }
    if (wr.verb == rdma::Verb::kWrite) DecodeLaneWrite(cs, wr);
    return;
  }

  if (OnRootWord(wr)) {
    if (wr.origin != rdma::kWrOriginRoot) {
      std::ostringstream os;
      os << "cs " << cs << " mutates the root pointer bypassing the "
         << "root-swap API";
      Report(5, wr.remote, cs, -1, os.str());
    }
    return;
  }

  if (wr.space != rdma::MemorySpace::kHost) return;

  // Intent slab on MS 0: decode publishes/clears into the slot shadow.
  if (wr.remote.node == 0 && wr.verb == rdma::Verb::kWrite &&
      wr.remote.offset >= kIntentSlabOffset &&
      wr.remote.offset < kIntentSlabOffset + kIntentSlabBytes) {
    DecodeIntentWrite(wr);
    return;
  }

  if (wr.remote.offset < kChunkAreaOffset) return;  // meta / claim words

  // Value-log extents are write-once: private to the appender until the
  // publish, immutable afterwards, dead after retire.
  if (VExtShadow* e = FindVExtent(wr.remote.node, wr.remote.offset)) {
    switch (e->state) {
      case VExtState::kAppending:
        if (e->owner_cs != cs) {
          std::ostringstream os;
          os << "cs " << cs << " writes vlog extent " << wr.remote.node << ":"
             << wr.remote.offset << " still private to cs " << e->owner_cs;
          Report(1, wr.remote, cs, e->owner_cs, os.str());
        }
        return;
      case VExtState::kLive: {
        std::ostringstream os;
        os << "cs " << cs << " writes PUBLISHED vlog extent " << wr.remote.node
           << ":" << wr.remote.offset << " (extents are immutable)";
        Report(1, wr.remote, cs, -1, os.str());
        return;
      }
      case VExtState::kDead: {
        std::ostringstream os;
        os << "cs " << cs << " writes retired vlog extent " << wr.remote.node
           << ":" << wr.remote.offset << " (dead at epoch " << e->dead_epoch
           << ")";
        Report(2, wr.remote, cs, -1, os.str());
        return;
      }
    }
    return;
  }

  NodeShadow* n = FindNode(wr.remote.node, wr.remote.offset);
  if (n == nullptr) return;  // not a tracked node region

  // V3: a structural write claiming intent coverage must have its slot
  // published (and not yet cleared) at post time.
  if (wr.intent_slot != rdma::kWrNoIntent) {
    const uint32_t live = intent_live_.count(cs) ? intent_live_[cs] : 0;
    if ((live & (1u << wr.intent_slot)) == 0) {
      std::ostringstream os;
      os << "cs " << cs << " structural write to " << wr.remote.node << ":"
         << wr.remote.offset << " tagged with intent slot "
         << static_cast<int>(wr.intent_slot)
         << " which is not published (write before publish or after clear)";
      Report(3, wr.remote, cs, -1, os.str());
    }
  }

  switch (n->state) {
    case NodeState::kFreed: {
      std::ostringstream os;
      os << "cs " << cs << " writes freed node " << wr.remote.node << ":"
         << wr.remote.offset << " (freed at epoch " << n->freed_epoch << ")";
      Report(2, wr.remote, cs, -1, os.str());
      return;
    }
    case NodeState::kPrivate: {
      if (n->owner_cs != cs) {
        std::ostringstream os;
        os << "cs " << cs << " writes node " << wr.remote.node << ":"
           << wr.remote.offset << " still private to cs " << n->owner_cs;
        Report(1, wr.remote, cs, n->owner_cs, os.str());
      }
      return;
    }
    case NodeState::kLive: {
      // Find the node's base offset for the lane hash.
      auto& per_ms = nodes_[wr.remote.node];
      auto it = per_ms.upper_bound(wr.remote.offset);
      --it;
      const rdma::GlobalAddress base(wr.remote.node, it->first);
      uint16_t lane = 0;
      int owner = -1;
      const bool holds = HoldsLane(cs, base, &lane, &owner);
      if (!holds) {
        std::ostringstream os;
        os << "cs " << cs << " writes live node " << wr.remote.node << ":"
           << wr.remote.offset << " without holding its lock lane"
           << (owner >= 0 ? " (held by cs " + std::to_string(owner) + ")"
                          : " (lane free)");
        Report(1, wr.remote, cs, owner, os.str());
      } else if (LaneExpired(lane)) {
        std::ostringstream os;
        os << "cs " << cs << " writes live node " << wr.remote.node << ":"
           << wr.remote.offset
           << " under an EXPIRED lease (stamp " << LockLaneStamp(lane)
           << ") — write-after-steal hazard";
        Report(1, wr.remote, cs, -1, os.str());
      }
      // V4: the write's source bytes must not come from an unvalidated
      // lock-free read.
      if (wr.verb == rdma::Verb::kWrite) {
        const uintptr_t sb = reinterpret_cast<uintptr_t>(wr.local_buf);
        const uintptr_t se = sb + wr.length;
        const uint64_t now = static_cast<uint64_t>(cfg_.sim->now());
        for (const Taint& t : taints_) {
          if (t.begin < se && t.end > sb && now - t.at <= kTaintTtlNs) {
            std::ostringstream os;
            os << "cs " << cs << " writes node " << wr.remote.node << ":"
               << wr.remote.offset
               << " from a buffer read lock-free from " << t.src.node << ":"
               << t.src.offset << " that was never version-validated";
            Report(4, wr.remote, cs, -1, os.str());
            break;
          }
        }
      }
      return;
    }
  }
}

void Checker::CheckRead(int cs, const rdma::WorkRequest& wr) {
  if (wr.space != rdma::MemorySpace::kHost) return;
  if (wr.remote.offset < kChunkAreaOffset) return;

  // Dead vlog extents past their grace window need an epoch pin, exactly
  // like freed nodes (V2 use-after-free over value extents).
  if (VExtShadow* e = FindVExtent(wr.remote.node, wr.remote.offset)) {
    if (e->state == VExtState::kDead && cfg_.reclaim != nullptr &&
        cfg_.reclaim->SafeToRecycle(e->dead_epoch) &&
        cfg_.reclaim->ActivePins(cs) == 0) {
      std::ostringstream os;
      os << "cs " << cs << " reads vlog extent " << wr.remote.node << ":"
         << wr.remote.offset << " retired at epoch " << e->dead_epoch
         << " past its grace window while holding no epoch pin";
      Report(2, wr.remote, cs, -1, os.str());
    }
    return;
  }

  NodeShadow* n = FindNode(wr.remote.node, wr.remote.offset);
  if (n == nullptr) return;

  if (n->state == NodeState::kFreed && cfg_.reclaim != nullptr &&
      cfg_.reclaim->SafeToRecycle(n->freed_epoch) &&
      cfg_.reclaim->ActivePins(cs) == 0) {
    // Reads of grace-parked tombstones are legal (stale translations
    // bounce and re-resolve); past the grace window the bytes may be
    // recycled at any instant, and only an epoch pin makes the read safe.
    std::ostringstream os;
    os << "cs " << cs << " reads node " << wr.remote.node << ":"
       << wr.remote.offset << " freed at epoch " << n->freed_epoch
       << " past its grace window while holding no epoch pin";
    Report(2, wr.remote, cs, -1, os.str());
    return;
  }

  // Taint full-node lock-free reads; validation helpers clear the taint.
  if (wr.length == cfg_.node_size && wr.local_buf != nullptr) {
    const bool safe =
        (n->state == NodeState::kLive &&
         HoldsLane(cs, rdma::GlobalAddress(wr.remote.node,
                                           wr.remote.offset),
                   nullptr, nullptr)) ||
        (n->state == NodeState::kPrivate && n->owner_cs == cs);
    if (!safe) {
      AddTaint(cs, wr);
    } else {
      DropTaintOverlapping(reinterpret_cast<uintptr_t>(wr.local_buf),
                           reinterpret_cast<uintptr_t>(wr.local_buf) +
                               wr.length);
    }
  }
}

void Checker::DecodeLaneWrite(int cs, const rdma::WorkRequest& wr) {
  if (wr.length != kLockBytes || wr.local_buf == nullptr) return;
  const uint64_t base =
      wr.space == rdma::MemorySpace::kDevice ? 0 : kHostGltOffset;
  GlobalLockRef ref;
  ref.ms = wr.remote.node;
  ref.index = static_cast<uint32_t>((wr.remote.offset - base) / kLockBytes);
  ref.space = wr.space;
  uint16_t lane = 0;
  std::memcpy(&lane, wr.local_buf, sizeof(lane));
  if (lane == 0) {
    // Release: the shadow-held window ends at release POST, before the
    // release applies — covered write-backs earlier in the same batch
    // were already checked against the held shadow.
    lanes_.erase(LaneKey(ref));
  } else {
    // Renew / handover re-stamp (or a test's direct encode).
    lanes_[LaneKey(ref)].lane = lane;
  }
  (void)cs;
}

void Checker::DecodeIntentWrite(const rdma::WorkRequest& wr) {
  if (wr.local_buf == nullptr || wr.length == 0) return;
  const uint64_t slot_index =
      (wr.remote.offset - kIntentSlabOffset) / kIntentSlotBytes;
  const int slab_cs = static_cast<int>(slot_index / kIntentSlotsPerClient);
  const int slot = static_cast<int>(slot_index % kIntentSlotsPerClient);
  // Byte 0 of an intent record is its op code; 0 == kNone == cleared.
  const uint8_t op = static_cast<const uint8_t*>(wr.local_buf)[0];
  if (op != 0) {
    intent_live_[slab_cs] |= 1u << slot;
  } else {
    intent_live_[slab_cs] &= ~(1u << slot);
  }
}

// --- reporting -------------------------------------------------------------

void Checker::Report(int rule, rdma::GlobalAddress addr, int actor, int other,
                     std::string message) {
  Violation v;
  v.rule = rule;
  v.message = std::move(message);
  v.addr = addr;
  v.actor_cs = actor;
  v.other_actor = other;
  v.sim_time = static_cast<uint64_t>(cfg_.sim->now());
  findings_.push_back(v);

  std::ostringstream os;
  os << "DMSan " << RuleName(rule) << " @t=" << v.sim_time << "ns: "
     << v.message;
  std::fprintf(stderr, "%s\n", os.str().c_str());
  if (cfg_.tracer != nullptr) {
    std::vector<uint32_t> rings;
    if (actor >= 0) rings.push_back(obs::RingId::Client(actor));
    if (other >= 0 && other != actor) {
      rings.push_back(obs::RingId::Client(other));
    }
    cfg_.tracer->DumpToStderr(os.str(), rings);
  }
  if (abort_on_violation_) {
    SHERMAN_CHECK_MSG(false, "DMSan violation (rule V%d): %s", rule,
                      v.message.c_str());
  }
}

// --- registry --------------------------------------------------------------

int g_active_count = 0;

namespace {
std::map<sim::Simulator*, Checker*>& Registry() {
  static std::map<sim::Simulator*, Checker*> registry;
  return registry;
}
}  // namespace

void Attach(sim::Simulator* sim, Checker* checker) {
  auto& reg = Registry();
  SHERMAN_CHECK(reg.find(sim) == reg.end());
  reg[sim] = checker;
  g_active_count = static_cast<int>(reg.size());
}

void Detach(sim::Simulator* sim) {
  Registry().erase(sim);
  g_active_count = static_cast<int>(Registry().size());
}

Checker* Find(sim::Simulator* sim) {
  auto& reg = Registry();
  auto it = reg.find(sim);
  return it != reg.end() ? it->second : nullptr;
}

void NoteValidatedAll(const void* buf, uint32_t len) {
  for (auto& [sim, checker] : Registry()) checker->NoteValidated(buf, len);
}

bool DefaultEnabled() {
  const char* env = std::getenv("SHERMAN_DMSAN");
  if (env != nullptr && env[0] != '\0') return env[0] == '1';
#ifdef SHERMAN_DMSAN_DEFAULT
  return SHERMAN_DMSAN_DEFAULT != 0;
#else
  return false;
#endif
}

}  // namespace sherman::dmsan
