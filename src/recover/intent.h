// Intent records: the write-ahead anchors that make multi-RDMA-write
// structural operations crash-consistent.
//
// Every structural op (leaf / internal / root split, leaf merge, migration
// flip) performs several one-sided WRITEs that only together leave the
// remote tree consistent. A client that dies between them leaves the tree
// torn — and, because the index lives in passive disaggregated memory,
// nobody on the memory side will ever repair it. Before its FIRST remote
// write, the op therefore publishes a 64-byte INTENT RECORD into its
// client's slot of the intent slab on MS 0 (one extra awaited WRITE) and
// clears the slot after its LAST write. A survivor that steals the dead
// client's lock lease reads the slab and, for each in-doubt record,
// replays the op forward (if its commit point was passed) or rolls it back
// (if not) — see recover::Recoverer. Records carry enough to re-resolve
// everything else from the live tree, so recovery is idempotent: a
// recoverer that itself crashes mid-recovery leaves a state a later
// recoverer handles with the same decision procedure.
#ifndef SHERMAN_RECOVER_INTENT_H_
#define SHERMAN_RECOVER_INTENT_H_

#include <cstdint>
#include <cstring>

#include "alloc/layout.h"
#include "core/node_layout.h"
#include "core/stats.h"
#include "fault/crash_point.h"
#include "rdma/fabric.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "util/logging.h"

namespace sherman::recover {

enum class IntentOp : uint8_t {
  kNone = 0,
  kSplit = 1,  // leaf or internal split (level disambiguates)
  kMerge = 2,  // leaf merge into left sibling
  kFlip = 3,   // migration copy-then-flip of one node
  kRoot = 4,   // new-root install (root-pointer CAS is the commit point)
};

struct IntentRecord {
  IntentOp op = IntentOp::kNone;
  uint8_t level = 0;
  // Fence interval of the primary node at publish time.
  Key lo = 0;
  Key hi = 0;
  rdma::GlobalAddress primary;  // split: node being split; merge: leaf L;
                                // flip: source node; root: new root node
  rdma::GlobalAddress second;   // split: new sibling; merge: left-sibling
                                // hint; flip: target copy
  rdma::GlobalAddress parent;   // resolve hint only (re-resolved live)
  uint64_t aux = 0;             // split: separator key

  void Serialize(uint8_t out[kIntentSlotBytes]) const {
    std::memset(out, 0, kIntentSlotBytes);
    out[0] = static_cast<uint8_t>(op);
    out[1] = level;
    auto put = [&out](int at, uint64_t v) { std::memcpy(out + at, &v, 8); };
    put(8, lo);
    put(16, hi);
    put(24, primary.ToU64());
    put(32, second.ToU64());
    put(40, parent.ToU64());
    put(48, aux);
  }

  static IntentRecord Deserialize(const uint8_t in[kIntentSlotBytes]) {
    IntentRecord r;
    r.op = static_cast<IntentOp>(in[0]);
    r.level = in[1];
    auto get = [&in](int at) {
      uint64_t v;
      std::memcpy(&v, in + at, 8);
      return v;
    };
    r.lo = get(8);
    r.hi = get(16);
    r.primary = rdma::GlobalAddress::FromU64(get(24));
    r.second = rdma::GlobalAddress::FromU64(get(32));
    r.parent = rdma::GlobalAddress::FromU64(get(40));
    r.aux = get(48);
    return r;
  }
};

// Remote address of client `cs`'s slot `slot` (slab lives on MS 0's host
// memory, next to the root pointer it must survive with).
inline rdma::GlobalAddress IntentSlotAddress(int cs, int slot) {
  return rdma::GlobalAddress(
      0, kIntentSlabOffset +
             (static_cast<uint64_t>(cs) * kIntentSlotsPerClient + slot) *
                 kIntentSlotBytes);
}

// Remote address of client `cs`'s recovery-claim word.
inline rdma::GlobalAddress RecoveryClaimAddress(int cs) {
  return rdma::GlobalAddress(0, kRecoveryClaimOffset + 8ull * cs);
}

// Client-side intent publisher: owns the local free-slot state of one
// client's slab and issues the publish/clear WRITEs. Slots are claimed
// locally (the slab is client-private, so no remote coordination), and a
// rare burst of more concurrent structural ops than slots waits here until
// one clears — slot holders always finish without waiting on other slots,
// so the wait is deadlock-free.
class IntentTable {
 public:
  IntentTable(rdma::Fabric* fabric, int cs_id)
      : fabric_(fabric), cs_id_(cs_id) {
    SHERMAN_CHECK_MSG(cs_id_ >= 0 && cs_id_ < static_cast<int>(kMaxIntentClients),
                      "client id outside the intent slab");
    for (uint32_t i = 0; i < kIntentSlotsPerClient; i++) free_ |= 1u << i;
  }

  IntentTable(const IntentTable&) = delete;
  IntentTable& operator=(const IntentTable&) = delete;

  // Crash hygiene: a publisher still parked for a slot at destruction
  // belongs to a dead client; keep its frame reachable (see the fault
  // graveyard).
  ~IntentTable() {
    for (std::coroutine_handle<> h : slot_waiters_.DetachAll()) {
      fault::Injector().Bury(h);
    }
  }

  // Publishes `rec` into a free slot; the WRITE is awaited so the record
  // is durable on MS 0 before the caller's first structural write.
  sim::Task<int> Publish(const IntentRecord& rec, OpStats* stats) {
    while (free_ == 0) co_await slot_waiters_.Wait();
    int slot = 0;
    while ((free_ & (1u << slot)) == 0) slot++;
    free_ &= ~(1u << slot);
    rec.Serialize(staged_[slot]);
    rdma::RdmaResult r = co_await fabric_->qp(cs_id_, 0).Post(
        rdma::WorkRequest::Write(IntentSlotAddress(cs_id_, slot),
                                 staged_[slot], kIntentSlotBytes));
    if (stats != nullptr) stats->round_trips++;
    SHERMAN_CHECK(r.status.ok());
    published_++;
    co_return slot;
  }

  // Clears the slot after the op's last structural write, WITHOUT
  // blocking the caller: the zeroing WRITE is posted synchronously here
  // (posted work completes even if the client's CPU dies right after —
  // the NIC owns it), so the one-RTT clear leaves the op's critical
  // path. The slot becomes reusable when the completion lands. A crash
  // that fires before this call leaves a COMPLETED intent behind, which
  // recovery resolves as a no-op: every replay is idempotent past its
  // commit point, and rolled-forward frees are idempotent at the grace
  // list.
  void ClearAsync(int slot) {
    SHERMAN_CHECK(slot >= 0 && slot < static_cast<int>(kIntentSlotsPerClient));
    std::memset(staged_[slot], 0, kIntentSlotBytes);
    sim::Spawn(ClearTask(slot));
  }

  uint64_t published() const { return published_; }

 private:
  sim::Task<void> ClearTask(int slot) {
    rdma::RdmaResult r = co_await fabric_->qp(cs_id_, 0).Post(
        rdma::WorkRequest::Write(IntentSlotAddress(cs_id_, slot),
                                 staged_[slot], kIntentSlotBytes));
    SHERMAN_CHECK(r.status.ok());
    free_ |= 1u << slot;
    slot_waiters_.WakeOne();
  }

  rdma::Fabric* fabric_;
  int cs_id_;
  uint32_t free_ = 0;  // bitmap of free slots
  // Staging buffers: WRITE payloads are snapshotted at post time, but the
  // per-slot buffer keeps Publish re-entrant across slots.
  uint8_t staged_[kIntentSlotsPerClient][kIntentSlotBytes] = {};
  sim::CoroQueue slot_waiters_;
  uint64_t published_ = 0;
};

}  // namespace sherman::recover

#endif  // SHERMAN_RECOVER_INTENT_H_
