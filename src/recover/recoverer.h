// Recoverer: survivor-driven repair of a crashed client's in-doubt state.
//
// Triggered when any lock waiter observes an expired lease (HoclClient's
// recovery hook), or explicitly by an operator/failure detector (tests,
// bench_recover). Exactly one survivor acts at a time per dead client,
// serialized by a CAS-claimed recovery word on MS 0 — the claim itself
// carries a lease stamp, so a recoverer that crashes mid-recovery is
// re-claimed and recovery re-runs (every step below is idempotent).
//
// Protocol, per dead client:
//  1. CLAIM the client's recovery word (CAS 0 -> my tag+stamp).
//  2. READ its intent slab (the write-ahead records of every structural
//     op that was between its first and last remote write — see
//     recover/intent.h).
//  3. SWEEP the client's lock lanes on every MS (kRpcSweepLocks): after
//     the sweep, survivors and the recoverer itself lock torn nodes with
//     the ordinary HOCL protocol. This is safe BEFORE the intents are
//     resolved because every torn state is either invisible behind
//     fence/free-flag validation (readers bounce, writers re-verify under
//     their locks) or B-link-legal (a half-split is served through
//     sibling chases).
//  4. RESOLVE each intent: replay it forward if its commit point landed,
//     roll it back if not (per-op decision rules in recoverer.cc). The
//     dead client's reclamation-epoch pins are still held here, so no
//     tombstoned node the resolution reads can be recycled under it.
//     Orphaned allocations (unpublished split siblings, unflipped
//     migration copies) are retired through the epoch-protected free
//     path so crashes don't leak remote memory.
//  5. Release the dead client's epoch pins (ReclaimEpoch::MarkDead) —
//     node recycling, frozen fabric-wide since the crash, resumes.
//  6. RELEASE the claim.
#ifndef SHERMAN_RECOVER_RECOVERER_H_
#define SHERMAN_RECOVER_RECOVERER_H_

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "core/btree.h"
#include "recover/intent.h"
#include "sim/task.h"

namespace sherman::recover {

struct RecoverStats {
  uint64_t recoveries = 0;         // completed claim->release cycles
  uint64_t partial_recoveries = 0; // gave up on a contended intent; retried
                                   // on the next trigger (see recoverer.cc)
  uint64_t intents_replayed = 0;   // completed forward past their commit point
  uint64_t intents_rolled_back = 0;
  uint64_t lanes_swept = 0;        // lock lanes released across all MSs
  uint64_t orphans_freed = 0;      // nodes retired via the epoch-free path
  sim::SimTime last_duration_ns = 0;  // wall time of the last recovery

  // Cross-survivor aggregation (bench_recover previously hand-summed the
  // fields and silently dropped any newly added counter).
  void Merge(const RecoverStats& other) {
    recoveries += other.recoveries;
    partial_recoveries += other.partial_recoveries;
    intents_replayed += other.intents_replayed;
    intents_rolled_back += other.intents_rolled_back;
    lanes_swept += other.lanes_swept;
    orphans_freed += other.orphans_freed;
    last_duration_ns = std::max(last_duration_ns, other.last_duration_ns);
  }
};

class Recoverer {
 public:
  Recoverer(ShermanSystem* system, TreeClient* client);

  Recoverer(const Recoverer&) = delete;
  Recoverer& operator=(const Recoverer&) = delete;

  // Recovers the client owning lock tag `dead_tag` (cs id = tag - 1).
  // PRECONDITION (fail-stop model): the client must actually be dead —
  // expired-lease detection establishes this on the organic path, and an
  // explicit caller (failure detector, test) must know it independently.
  // Recovering a live client would sweep locks it still holds.
  // Re-entrant: if this survivor is already recovering that tag, returns
  // immediately (the caller's CAS loop keeps spinning until the active
  // recovery frees the lane). If another survivor holds the claim, waits
  // for it to finish instead of duplicating the work.
  sim::Task<void> RecoverDeadOwner(uint16_t dead_tag);

  const RecoverStats& stats() const { return stats_; }

 private:
  // CAS-claims dead_cs's recovery word. Returns the claimed (stamped)
  // value this recoverer now owns, or 0 if another survivor completed the
  // recovery while we waited.
  sim::Task<uint64_t> ClaimDeadClient(int dead_cs);
  // CAS-transitions the claim from *expected to `desired` (renewal, or 0
  // to release). On success updates *expected and returns true; on
  // failure the claim was usurped (our lease on it expired and another
  // survivor took over) — the caller must STOP recovering, without
  // touching the word: every step is idempotent, so abandoning
  // mid-recovery is safe and the usurper finishes the job.
  sim::Task<bool> CasClaim(int dead_cs, uint64_t* expected, uint64_t desired);

  sim::Task<void> SweepLocks(uint16_t dead_tag);
  sim::Task<void> ClearRemoteSlot(int dead_cs, int slot);
  sim::Task<void> FreeNodeRemote(rdma::GlobalAddress addr);

  // Each resolver returns OK when the intent is fully resolved (safe to
  // clear) and an error when it could not make progress — e.g. a node it
  // needs is held by a live client that is itself parked on this very
  // recovery (lane aliasing can build such cycles). Giving up is safe:
  // the claim is released with the intent still published, the parked
  // client unwedges against the already-swept lanes, and the next trigger
  // re-runs the (idempotent) resolution without the cycle.
  sim::Task<Status> RecoverIntent(const IntentRecord& rec);
  sim::Task<Status> RecoverRoot(const IntentRecord& rec);
  sim::Task<Status> RecoverSplit(const IntentRecord& rec);
  sim::Task<Status> RecoverMerge(const IntentRecord& rec);
  sim::Task<Status> RecoverFlip(const IntentRecord& rec);

  // Is a separator entry with key `sep` present in the live internal node
  // at `level` covering it?
  sim::Task<bool> SeparatorPresent(Key sep, uint8_t level);

  uint32_t node_size() const;

  ShermanSystem* system_;
  TreeClient* t_;
  std::set<uint16_t> in_progress_;
  RecoverStats stats_;
  // Trace context on this survivor's recoverer ring; RecoverDeadOwner and
  // its resolvers run as one sequential coroutine chain per activation.
  obs::TraceCtx trace_;
};

}  // namespace sherman::recover

#endif  // SHERMAN_RECOVER_RECOVERER_H_
