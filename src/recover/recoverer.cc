#include "recover/recoverer.h"

#include <string>
#include <utility>

#include "lock/lock_table.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace sherman::recover {

namespace {
// Bounded retries for live-contention waits inside recovery. Recovery only
// ever waits on LIVE holders (the dead client's lanes are swept first), so
// these bounds are generous safety rails, not correctness knobs.
constexpr uint32_t kResolveAttempts = 64;
constexpr sim::SimTime kResolveBackoffNs = 2'000;
constexpr uint32_t kClaimAttempts = 1 << 16;
}  // namespace

Recoverer::Recoverer(ShermanSystem* system, TreeClient* client)
    : system_(system), t_(client) {
  trace_ = obs::TraceCtx::For(&system_->tracer(),
                              obs::RingId::Recoverer(t_->cs_id()));
}

uint32_t Recoverer::node_size() const {
  return system_->options().shape.node_size;
}

sim::Task<bool> Recoverer::CasClaim(int dead_cs, uint64_t* expected,
                                    uint64_t desired) {
  uint64_t fetched = 0;
  rdma::RdmaResult r =
      co_await system_->fabric()
          .qp(t_->cs_id(), 0)
          .Post(rdma::WorkRequest::Cas(RecoveryClaimAddress(dead_cs),
                                       *expected, desired, &fetched));
  SHERMAN_CHECK(r.status.ok());
  if (r.cas_success) *expected = desired;
  co_return r.cas_success;
}

sim::Task<uint64_t> Recoverer::ClaimDeadClient(int dead_cs) {
  rdma::Qp& qp = system_->fabric().qp(t_->cs_id(), 0);
  const rdma::GlobalAddress addr = RecoveryClaimAddress(dead_cs);
  bool observed_busy = false;
  for (uint32_t i = 0; i < kClaimAttempts; i++) {
    const uint64_t mine =
        MakeLockLane(t_->hocl().OwnerTag(), t_->hocl().LeaseStampNow());
    uint64_t fetched = 0;
    rdma::RdmaResult r =
        co_await qp.Post(rdma::WorkRequest::Cas(addr, 0, mine, &fetched));
    SHERMAN_CHECK(r.status.ok());
    if (r.cas_success) co_return mine;
    const uint16_t lane = static_cast<uint16_t>(fetched & 0xffff);
    if (t_->hocl().LaneExpired(lane)) {
      // The previous recoverer died mid-recovery; take over (every
      // recovery step is idempotent, so re-running from the top is safe).
      rdma::RdmaResult r2 = co_await qp.Post(
          rdma::WorkRequest::Cas(addr, fetched, mine, &fetched));
      SHERMAN_CHECK(r2.status.ok());
      if (r2.cas_success) co_return mine;
      continue;
    }
    // A live survivor is recovering. Wait for it to release the claim —
    // once the word reads zero again the dead client is fully recovered.
    observed_busy = true;
    co_await system_->simulator().Delay(
        t_->hocl().options().lease_period_ns / 2);
    uint64_t word = 0;
    rdma::RdmaResult rr = co_await qp.Post(
        rdma::WorkRequest::Read(addr, &word, 8));
    SHERMAN_CHECK(rr.status.ok());
    if (word == 0 && observed_busy) co_return 0;
  }
  SHERMAN_CHECK_MSG(false, "recovery claim starved");
  co_return 0;
}

sim::Task<void> Recoverer::SweepLocks(uint16_t dead_tag) {
  SHERMAN_TEVENT(&trace_, "recover.sweep_locks", dead_tag);
  for (int ms = 0; ms < system_->fabric().num_memory_servers(); ms++) {
    const uint64_t swept = co_await system_->fabric()
                               .qp(t_->cs_id(), ms)
                               .Rpc(kRpcSweepLocks, dead_tag);
    stats_.lanes_swept += swept;
  }
}

sim::Task<void> Recoverer::ClearRemoteSlot(int dead_cs, int slot) {
  static const uint8_t kZeros[kIntentSlotBytes] = {};
  rdma::RdmaResult r =
      co_await system_->fabric()
          .qp(t_->cs_id(), 0)
          .Post(rdma::WorkRequest::Write(IntentSlotAddress(dead_cs, slot),
                                         kZeros, kIntentSlotBytes));
  SHERMAN_CHECK(r.status.ok());
}

sim::Task<void> Recoverer::FreeNodeRemote(rdma::GlobalAddress addr) {
  // Replayed/rolled-back structural ops may retire a leaf the hint
  // sidecar still maps; drop the mapping before the free (DMSan V6).
  // Single chokepoint: every recovery free funnels through here.
  co_await t_->HintInvalidate(addr, nullptr);
  co_await system_->fabric()
      .qp(t_->cs_id(), addr.node)
      .Rpc(kRpcFreeNode, addr.offset, node_size());
  stats_.orphans_freed++;
}

sim::Task<void> Recoverer::RecoverDeadOwner(uint16_t dead_tag) {
  SHERMAN_CHECK(dead_tag != 0);
  const int dead_cs = static_cast<int>(dead_tag) - 1;
  SHERMAN_CHECK_MSG(dead_cs != t_->cs_id(),
                    "a client cannot recover itself");
  if (in_progress_.count(dead_tag) != 0) {
    // Another coroutine of this survivor is already on it; the caller's
    // CAS loop keeps polling until the lane frees.
    co_return;
  }
  in_progress_.insert(dead_tag);
  const sim::SimTime t0 = system_->simulator().now();

  // Flight-record the moment of activation: the dead client's last spans
  // (what it was doing when it died) and this survivor's recent history.
  system_->tracer().DumpToStderr(
      "recovery activated: cs" + std::to_string(t_->cs_id()) +
          " recovering dead owner tag " + std::to_string(dead_tag),
      {obs::RingId::Client(dead_cs), obs::RingId::Client(t_->cs_id()),
       obs::RingId::Recoverer(t_->cs_id())});
  SHERMAN_TSPAN(&trace_, "recover.recover_dead", dead_tag);

  uint64_t claim = co_await ClaimDeadClient(dead_cs);
  if (claim != 0) {
    // Read the dead client's whole intent slab in one READ.
    std::vector<uint8_t> slab(kIntentSlotsPerClient * kIntentSlotBytes);
    rdma::RdmaResult r =
        co_await system_->fabric()
            .qp(t_->cs_id(), 0)
            .Post(rdma::WorkRequest::Read(IntentSlotAddress(dead_cs, 0),
                                          slab.data(),
                                          static_cast<uint32_t>(slab.size())));
    SHERMAN_CHECK(r.status.ok());

    // Release every lane the dead client holds BEFORE resolving intents:
    // the resolution below re-acquires what it needs with the ordinary
    // HOCL protocol, and survivors blocked on dead lanes unwedge
    // immediately. Torn states stay invisible meanwhile (fence / free-flag
    // validation bounces readers; writers re-verify under their locks).
    co_await SweepLocks(dead_tag);

    bool all_resolved = true;
    bool usurped = false;
    for (uint32_t slot = 0; slot < kIntentSlotsPerClient && !usurped;
         slot++) {
      const IntentRecord rec =
          IntentRecord::Deserialize(slab.data() + slot * kIntentSlotBytes);
      if (rec.op == IntentOp::kNone) continue;
      // Re-stamp the claim BEFORE each resolution — one resolution's
      // bounded retry loops can outlast a lease period. A failed CAS
      // means our claim lease expired and another survivor took over:
      // stop immediately and leave the word alone (every step so far is
      // idempotent; the usurper finishes the job).
      if (!co_await CasClaim(dead_cs, &claim,
                             MakeLockLane(t_->hocl().OwnerTag(),
                                          t_->hocl().LeaseStampNow()))) {
        usurped = true;
        break;
      }
      SHERMAN_TINSTANT(&trace_, "recover.intent",
                       static_cast<uint64_t>(rec.op));
      Status st = co_await RecoverIntent(rec);
      if (!st.ok()) {
        all_resolved = false;
        continue;  // intent stays published; a later trigger retries it
      }
      co_await ClearRemoteSlot(dead_cs, slot);
    }

    if (usurped || !all_resolved) {
      stats_.partial_recoveries++;
      if (!usurped) co_await CasClaim(dead_cs, &claim, 0);
    } else {
      // With every intent resolved, the dead client's reclamation pins
      // can go: recycling (frozen fabric-wide since the crash) resumes.
      // An unresolved intent keeps the pins — they are what protects the
      // tombstoned nodes the retry will still read.
      system_->reclaim_epoch().MarkDead(dead_cs);
      stats_.recoveries++;
      co_await CasClaim(dead_cs, &claim, 0);
    }
  }

  stats_.last_duration_ns = system_->simulator().now() - t0;
  in_progress_.erase(dead_tag);
}

sim::Task<Status> Recoverer::RecoverIntent(const IntentRecord& rec) {
  switch (rec.op) {
    case IntentOp::kRoot:
      co_return co_await RecoverRoot(rec);
    case IntentOp::kSplit:
      co_return co_await RecoverSplit(rec);
    case IntentOp::kMerge:
      co_return co_await RecoverMerge(rec);
    case IntentOp::kFlip:
      co_return co_await RecoverFlip(rec);
    case IntentOp::kNone:
      break;
  }
  co_return Status::OK();
}

// --- new-root install -------------------------------------------------------
//
// Commit point: the root-pointer CAS. The staged root node is reachable iff
// it sits on the leftmost spine under the CURRENT root (later growth can
// stack more roots above it), so walk the spine rather than compare the
// pointer alone.
sim::Task<Status> Recoverer::RecoverRoot(const IntentRecord& rec) {
  uint8_t ptr_buf[8];
  Status st = co_await t_->ReadRaw(rdma::GlobalAddress(0, kRootPointerOffset),
                                   ptr_buf, sizeof(ptr_buf), nullptr);
  SHERMAN_CHECK(st.ok());
  uint64_t packed;
  std::memcpy(&packed, ptr_buf, 8);
  rdma::GlobalAddress addr = rdma::GlobalAddress::FromU64(packed);

  std::vector<uint8_t> buf(node_size());
  for (int depth = 0; depth < 64 && !addr.is_null(); depth++) {
    if (addr == rec.primary) {
      stats_.intents_replayed++;  // committed; nothing left to do
      co_return Status::OK();
    }
    st = co_await t_->ReadNodeChecked(addr, buf.data(), nullptr);
    if (!st.ok()) co_return Status::Retry("root spine unreadable");
    NodeView view(buf.data(), &system_->options().shape);
    if (view.is_leaf()) break;
    addr = view.leftmost_child();
  }
  // Not reachable: the CAS never happened (or lost). The staged node is an
  // orphan allocation — retire it.
  co_await FreeNodeRemote(rec.primary);
  stats_.intents_rolled_back++;
  co_return Status::OK();
}

// --- leaf / internal split --------------------------------------------------
//
// Commit point: the doorbell batch that rewrites the split node with its
// shrunk fence + sibling pointer (and releases its lock). Detection: walk
// the primary's sibling chain across the original interval — the new
// sibling appears in the chain iff the commit batch landed. (Survivor
// activity after the lane sweep can insert more nodes into the chain or
// even tombstone the primary, but it can neither link the unpublished
// sibling nor unlink a linked one: unlinking a node requires removing its
// parent separator, which for the new sibling is exactly what the dead
// client never got to insert.)
sim::Task<Status> Recoverer::RecoverSplit(const IntentRecord& rec) {
  std::vector<uint8_t> buf(node_size());
  rdma::GlobalAddress addr = rec.primary;
  bool linked = false;
  for (int chase = 0; chase < 64 && !addr.is_null(); chase++) {
    if (addr == rec.second) {
      linked = true;
      break;
    }
    Status st = co_await t_->ReadNodeChecked(addr, buf.data(), nullptr);
    if (!st.ok()) co_return Status::Retry("split chain unreadable");
    NodeView view(buf.data(), &system_->options().shape);
    if (view.hi_fence() >= rec.hi) break;  // walked past the old interval
    addr = view.sibling();
  }

  if (!linked) {
    // Rolled back: the staged sibling was never published; nothing else
    // remote changed (the primary still covers the whole interval, or has
    // since been restructured by survivors — either way consistently).
    co_await FreeNodeRemote(rec.second);
    stats_.intents_rolled_back++;
    co_return Status::OK();
  }

  // Committed: the B-link chain already serves the new sibling's range;
  // replay the missing ascent so descents stop paying the sibling chase.
  // Only the dead client could have inserted this separator, so a plain
  // presence check is race-free.
  const Key sep = rec.aux;
  if (!co_await SeparatorPresent(sep, static_cast<uint8_t>(rec.level + 1))) {
    Status st = co_await t_->InsertInternal(
        sep, rec.second, static_cast<uint8_t>(rec.level + 1), nullptr);
    if (!st.ok()) co_return st;
  }
  stats_.intents_replayed++;
  co_return Status::OK();
}

sim::Task<bool> Recoverer::SeparatorPresent(Key sep, uint8_t level) {
  for (uint32_t attempt = 0; attempt < kResolveAttempts; attempt++) {
    StatusOr<rdma::GlobalAddress> pr =
        co_await t_->FindNodeAddr(sep, level, nullptr);
    if (!pr.ok()) {
      if (pr.status().IsRetry()) continue;
      co_return false;  // e.g. the tree is not that tall: no parent yet
    }
    ParsedInternal parsed;
    Status st = co_await t_->ReadInternalContaining(*pr, sep, &parsed, nullptr);
    if (!st.ok()) {
      if (st.IsRetry()) continue;
      co_return false;
    }
    for (const auto& [k, child] : parsed.entries) {
      if (k == sep) co_return true;
    }
    co_return false;
  }
  co_return false;
}

// --- leaf merge -------------------------------------------------------------
//
// Commit point: the tombstone write on the merged leaf L (the FIRST write
// of the publish sequence). If it never landed nothing remote changed and
// the intent is simply dropped. If it landed, [lo, hi) is dark until the
// parent entry is removed and the left sibling widened — replay those
// under freshly acquired locks, re-verifying the (possibly evolved)
// neighborhood exactly like the original merge protocol. If survivors
// have refilled the left sibling so the survivors no longer fit, undo
// instead: revive L (clear its free flag) and restore its parent link —
// the B-link chain serves [lo, hi) through the left sibling the moment L
// is live again.
sim::Task<Status> Recoverer::RecoverMerge(const IntentRecord& rec) {
  const TreeOptions& o = system_->options();
  const bool combine = o.combine_commands;
  const Key lo = rec.lo;
  const Key hi = rec.hi;
  OpStats stats;
  stats.trace = &trace_;

  // Hold L's lane for the whole resolution (post-sweep it is free; other
  // survivors bounce off the tombstone rather than contend).
  LockGuard lg = co_await t_->hocl_.Lock(rec.primary, &stats);
  std::vector<uint8_t> buf(node_size());
  Status st = co_await t_->ReadRaw(rec.primary, buf.data(), node_size(),
                                   &stats);
  SHERMAN_CHECK(st.ok());
  NodeView view(buf.data(), &o.shape);

  if (!view.is_free()) {
    // Tombstone never landed: the merge published nothing. Drop it.
    co_await t_->hocl_.Unlock(lg, {}, combine, &stats);
    stats_.intents_rolled_back++;
    co_return Status::OK();
  }

  for (uint32_t attempt = 0; attempt < kResolveAttempts; attempt++) {
    if (attempt > 0) {
      co_await system_->simulator().Delay(kResolveBackoffNs);
    }
    // This loop can outlast a lease period while L's lane stays ours;
    // keep the lease fresh (no-op unless a period boundary passed) or a
    // waiter would declare US dead and sweep the lane mid-repair.
    co_await t_->hocl_.RenewLease(lg, &stats);
    // Current left neighbor: the node covering lo-1 at leaf level. The
    // intent's hint is tried first; survivor splits/merges since the
    // crash are chased like any other fence move.
    rdma::GlobalAddress start = rec.second;
    if (attempt > 0 || start.is_null()) {
      StatusOr<TreeClient::LeafRef> r =
          co_await t_->FindLeafAddr(lo - 1, &stats, /*allow_hint=*/false);
      if (!r.ok()) continue;
      start = r->addr;
    }
    std::vector<uint8_t> sbuf(node_size());
    StatusOr<TreeClient::SecondLocked> sl = co_await t_->LockSecondChasing(
        start, lo - 1, rec.primary, rdma::kNullAddress, sbuf.data(), &stats,
        /*level=*/0);
    if (!sl.ok()) continue;
    TreeClient::SecondLocked sib = *sl;
    NodeView sview(sbuf.data(), &o.shape);

    const bool chain_intact =
        sview.hi_fence() == lo && sview.sibling() == rec.primary;
    if (!chain_intact && sview.hi_fence() < hi) {
      // Transient (e.g. the neighbor is mid-restructure); retry.
      co_await t_->UnlockSecond(sib, {}, &stats);
      continue;
    }

    if (!chain_intact) {
      // A previous (crashed) recoverer already widened the neighbor over
      // [lo, hi). Only the tail work can be missing: the parent entry and
      // the free.
      co_await t_->UnlockSecond(sib, {}, &stats);
    } else {
      const bool fits =
          o.shape.varlen
              ? VarLeafFits(sview, view)
              : sview.LiveLeafEntries(o.two_level_versions) +
                        view.LiveLeafEntries(o.two_level_versions) <=
                    o.shape.leaf_capacity();
      if (!fits) {
        // Undo: survivors refilled the neighbor; the survivors no longer
        // fit. Revive L — the chain (neighbor.sibling == L) serves
        // [lo, hi) again the moment the free flag clears — then restore
        // its parent separator so descents find it directly. (If the
        // separator insert fails — the only cause is memory exhaustion —
        // the revived L is still served through the B-link chain, so the
        // intent is resolved either way.)
        co_await t_->UnlockSecond(sib, {}, &stats);
        view.set_free(false);
        if (o.consistency == TreeOptions::Consistency::kChecksum) {
          view.UpdateChecksum();
        }
        std::vector<rdma::WorkRequest> wrs;
        wrs.push_back(rdma::WorkRequest::Write(rec.primary, buf.data(),
                                               node_size()));
        co_await t_->hocl_.Unlock(lg, std::move(wrs), combine, &stats);
        if (!co_await SeparatorPresent(lo, 1)) {
          Status ist = co_await t_->InsertInternal(lo, rec.primary, 1, &stats);
          (void)ist;
        }
        t_->cache_.InvalidateLevel1Covering(lo);
        stats_.intents_rolled_back++;
        co_return Status::OK();
      }
    }

    // Replay forward: drop the parent separator (if still present), widen
    // the neighbor, retire L.
    bool parent_done = false;
    for (uint32_t pa = 0; pa < kResolveAttempts && !parent_done; pa++) {
      co_await t_->hocl_.RenewLease(lg, &stats);
      StatusOr<rdma::GlobalAddress> pr = co_await t_->FindNodeAddr(lo, 1,
                                                                   &stats);
      if (!pr.ok()) continue;
      std::vector<uint8_t> pbuf(node_size());
      StatusOr<TreeClient::SecondLocked> pl = co_await t_->LockSecondChasing(
          *pr, lo, rec.primary, chain_intact ? sib.addr : rdma::kNullAddress,
          pbuf.data(), &stats, /*level=*/1);
      if (!pl.ok()) continue;
      TreeClient::SecondLocked par = *pl;
      NodeView pview(pbuf.data(), &o.shape);
      if (pview.InternalRemove(lo, rec.primary)) {
        t_->SealNode(pview, /*structural_change=*/true);
        std::vector<rdma::WorkRequest> wrs;
        wrs.push_back(
            rdma::WorkRequest::Write(par.addr, pbuf.data(), node_size()));
        co_await t_->UnlockSecond(par, std::move(wrs), &stats);
      } else {
        co_await t_->UnlockSecond(par, {}, &stats);
      }
      parent_done = true;
    }
    if (!parent_done) {
      // Could not pin the parent down (live contention — possibly a client
      // parked on this very recovery). Give up; the intent stays and the
      // next trigger retries without the cycle.
      if (chain_intact) co_await t_->UnlockSecond(sib, {}, &stats);
      co_await t_->hocl_.Unlock(lg, {}, combine, &stats);
      co_return Status::Retry("merge replay: parent contended");
    }

    if (chain_intact) {
      if (o.shape.varlen) {
        MoveVarLeafEntries(&sview, view);
      } else {
        MoveLeafEntries(&sview, view, o.two_level_versions);
      }
      sview.set_hi_fence(hi);
      sview.set_sibling(view.sibling());
      t_->SealNode(sview, /*structural_change=*/true);
      std::vector<rdma::WorkRequest> wrs;
      wrs.push_back(
          rdma::WorkRequest::Write(sib.addr, sbuf.data(), node_size()));
      co_await t_->UnlockSecond(sib, std::move(wrs), &stats);
    }

    co_await FreeNodeRemote(rec.primary);
    co_await t_->hocl_.Unlock(lg, {}, combine, &stats);
    t_->cache_.InvalidateLevel1Covering(lo);
    stats_.intents_replayed++;
    co_return Status::OK();
  }
  co_await t_->hocl_.Unlock(lg, {}, combine, &stats);
  co_return Status::Retry("merge recovery: neighborhood contended");
}

// --- migration flip ---------------------------------------------------------
//
// Commit point: the parent's child-pointer swap (ReplaceChild). Detection
// resolves the LIVE parent for the node's lo key: while uncommitted the
// child is the source (a tombstoned leaf source freezes its whole range,
// and a live internal source keeps its fences through survivor edits), so
// anything else means the swap landed. Replay completes the B-link repair
// and retires the source; rollback revives a tombstoned leaf source and
// retires the orphan copy.
sim::Task<Status> Recoverer::RecoverFlip(const IntentRecord& rec) {
  const TreeOptions& o = system_->options();
  const bool combine = o.combine_commands;
  const Key lo = rec.lo;
  OpStats stats;
  stats.trace = &trace_;

  LockGuard lg = co_await t_->hocl_.Lock(rec.primary, &stats);
  std::vector<uint8_t> buf(node_size());
  Status st = co_await t_->ReadRaw(rec.primary, buf.data(), node_size(),
                                   &stats);
  SHERMAN_CHECK(st.ok());
  NodeView view(buf.data(), &o.shape);

  rdma::GlobalAddress child;
  for (uint32_t attempt = 0; attempt < kResolveAttempts; attempt++) {
    // See RecoverMerge: the source's lane is held across this loop.
    co_await t_->hocl_.RenewLease(lg, &stats);
    StatusOr<rdma::GlobalAddress> pr = co_await t_->FindNodeAddr(
        lo, static_cast<uint8_t>(rec.level + 1), &stats);
    if (!pr.ok()) continue;
    ParsedInternal parsed;
    st = co_await t_->ReadInternalContaining(*pr, lo, &parsed, &stats);
    if (!st.ok()) continue;
    child = parsed.ChildFor(lo);
    break;
  }
  if (child.is_null()) {
    co_await t_->hocl_.Unlock(lg, {}, combine, &stats);
    co_return Status::Retry("flip recovery: parent unresolvable");
  }

  if (child == rec.primary) {
    // Uncommitted: the copy was never published. Revive a tombstoned leaf
    // source (the pre-flip tombstone landed) and retire the copy.
    if (view.is_free()) {
      view.set_free(false);
      if (o.consistency == TreeOptions::Consistency::kChecksum) {
        view.UpdateChecksum();
      }
      std::vector<rdma::WorkRequest> wrs;
      wrs.push_back(
          rdma::WorkRequest::Write(rec.primary, buf.data(), node_size()));
      co_await t_->hocl_.Unlock(lg, std::move(wrs), combine, &stats);
    } else {
      co_await t_->hocl_.Unlock(lg, {}, combine, &stats);
    }
    co_await FreeNodeRemote(rec.second);
    t_->cache_.InvalidateKeyRange(rec.lo, rec.hi);
    stats_.intents_rolled_back++;
    co_return Status::OK();
  }

  // Committed: complete the repair. 1) Left-neighbor sibling pointer (the
  // chain may already be repaired, or re-routed by later survivor
  // structural ops — only an exact match is rewritten).
  if (lo != 0) {
    bool sib_done = false;
    for (uint32_t attempt = 0; attempt < kResolveAttempts && !sib_done;
         attempt++) {
      co_await t_->hocl_.RenewLease(lg, &stats);
      rdma::GlobalAddress start;
      if (rec.level == 0) {
        StatusOr<TreeClient::LeafRef> r =
            co_await t_->FindLeafAddr(lo - 1, &stats, /*allow_hint=*/false);
        if (!r.ok()) continue;
        start = r->addr;
      } else {
        StatusOr<rdma::GlobalAddress> r =
            co_await t_->FindNodeAddr(lo - 1, rec.level, &stats);
        if (!r.ok()) continue;
        start = *r;
      }
      std::vector<uint8_t> sbuf(node_size());
      StatusOr<TreeClient::SecondLocked> sl = co_await t_->LockSecondChasing(
          start, lo - 1, rec.primary, rdma::kNullAddress, sbuf.data(), &stats,
          rec.level);
      if (!sl.ok()) continue;
      TreeClient::SecondLocked sib = *sl;
      NodeView sview(sbuf.data(), &o.shape);
      if (sview.hi_fence() == lo && sview.sibling() == rec.primary) {
        sview.set_sibling(rec.second);
        t_->SealNode(sview, /*structural_change=*/true);
        std::vector<rdma::WorkRequest> wrs;
        wrs.push_back(
            rdma::WorkRequest::Write(sib.addr, sbuf.data(), node_size()));
        co_await t_->UnlockSecond(sib, std::move(wrs), &stats);
      } else {
        co_await t_->UnlockSecond(sib, {}, &stats);
      }
      sib_done = true;
    }
    if (!sib_done) {
      co_await t_->hocl_.Unlock(lg, {}, combine, &stats);
      co_return Status::Retry("flip recovery: left neighbor contended");
    }
  }

  // 2) Tombstone the source (internal sources tombstone post-flip; leaf
  // sources already are) and retire it.
  if (!view.is_free()) {
    view.set_free(true);
    if (o.consistency == TreeOptions::Consistency::kChecksum) {
      view.UpdateChecksum();
    }
    std::vector<rdma::WorkRequest> wrs;
    wrs.push_back(
        rdma::WorkRequest::Write(rec.primary, buf.data(), node_size()));
    co_await t_->hocl_.Unlock(lg, std::move(wrs), combine, &stats);
  } else {
    co_await t_->hocl_.Unlock(lg, {}, combine, &stats);
  }
  co_await FreeNodeRemote(rec.primary);
  t_->cache_.InvalidateKeyRange(rec.lo, rec.hi);
  stats_.intents_replayed++;
  co_return Status::OK();
}

}  // namespace sherman::recover
