#include "migrate/migrator.h"

#include <utility>
#include <vector>

#include "alloc/layout.h"
#include "fault/crash_point.h"
#include "lock/lock_table.h"
#include "obs/trace.h"
#include "recover/intent.h"
#include "sanitizer/dmsan.h"
#include "util/logging.h"

namespace sherman::migrate {

namespace {
// Sibling chases inside LockSecond (same bound TreeClient uses).
constexpr int kMaxSiblingChase = 64;
// Safety bound on the control-plane residual walk.
constexpr uint64_t kMaxWalkNodes = 1u << 22;

// Crash sites of the copy-then-flip protocol (see btree.cc for the site
// discipline; tests/recover_test.cc sweeps these).
const int kCrashFlipIntent = fault::RegisterCrashSite("flip.intent");
const int kCrashFlipCopy = fault::RegisterCrashSite("flip.copy");
const int kCrashFlipTombstone = fault::RegisterCrashSite("flip.tombstone");
const int kCrashFlipFlipped = fault::RegisterCrashSite("flip.flipped");
const int kCrashFlipSibfixed = fault::RegisterCrashSite("flip.sibfixed");
const int kCrashFlipFreed = fault::RegisterCrashSite("flip.freed");
}  // namespace

Migrator::Migrator(ShermanSystem* system, MigratorOptions options,
                   ShardMap* map, route::AdaptiveRouter* router)
    : system_(system), options_(options), map_(map), router_(router) {
  SHERMAN_CHECK(options_.cs_id >= 0 &&
                options_.cs_id < system_->num_clients());
  SHERMAN_CHECK(options_.max_passes > 0 && options_.max_retries > 0);
  trace_ = obs::TraceCtx::For(&system_->tracer(), obs::RingId::Migrator());
}

bool Migrator::SameLane(rdma::GlobalAddress a, rdma::GlobalAddress b) const {
  const bool onchip = system_->options().lock.onchip;
  const GlobalLockRef ra = LockFor(a, onchip);
  const GlobalLockRef rb = LockFor(b, onchip);
  return ra.ms == rb.ms && ra.index == rb.index && ra.space == rb.space;
}

sim::Task<rdma::GlobalAddress> Migrator::AllocOnTarget(uint16_t ms,
                                                       uint32_t size) {
  SHERMAN_CHECK(size > 0 && size <= kChunkSize);
  if (chunk_base_.is_null() || chunk_ms_ != ms ||
      chunk_used_ + size > kChunkSize) {
    const uint64_t off = co_await system_->fabric()
                             .qp(options_.cs_id, ms)
                             .Rpc(kRpcAllocChunk, 0);
    if (off == 0) co_return rdma::kNullAddress;
    chunk_ms_ = ms;
    chunk_base_ = rdma::GlobalAddress(ms, off);
    chunk_used_ = 0;
    stats_.chunk_rpcs++;
  }
  const rdma::GlobalAddress addr = chunk_base_.Plus(chunk_used_);
  chunk_used_ += size;
  // The migrator bump-allocates outside CsAllocator, so it feeds DMSan's
  // allocation shadow itself: the copy target is private until the flip.
  if (dmsan::Active()) {
    if (dmsan::Checker* c = system_->dmsan_checker()) {
      c->OnNodeAllocated(options_.cs_id, addr, size);
    }
  }
  co_return addr;
}

sim::Task<StatusOr<Migrator::LockedNode>> Migrator::LockSecond(
    rdma::GlobalAddress addr, Key key, rdma::GlobalAddress held, uint8_t* buf,
    OpStats* stats, uint8_t level) {
  TreeClient& t = tc();
  const bool combine = system_->options().combine_commands;
  for (int chase = 0; chase < kMaxSiblingChase; chase++) {
    const bool shared = SameLane(addr, held);
    LockGuard guard;
    if (!shared) guard = co_await t.hocl_.Lock(addr, stats);
    Status st = co_await t.ReadRaw(addr, buf, node_size(), stats);
    SHERMAN_CHECK(st.ok());
    NodeView view(buf, &system_->options().shape);
    // The level filter is load-bearing under reclamation: a recycled
    // address can host a node of a different role than the caller
    // resolved (see TreeClient::LockAndRead).
    const bool usable = !view.is_free() && view.level() == level;
    if (usable && view.InFence(key)) {
      co_return LockedNode{addr, guard, !shared};
    }
    const rdma::GlobalAddress next =
        (usable && key >= view.hi_fence()) ? view.sibling()
                                           : rdma::kNullAddress;
    if (!shared) co_await t.hocl_.Unlock(guard, {}, combine, stats);
    if (next.is_null()) co_return Status::Retry("locked node unusable");
    addr = next;
  }
  co_return Status::Retry("locked sibling chase bound");
}

sim::Task<void> Migrator::UnlockSecond(
    LockedNode locked, std::vector<rdma::WorkRequest> write_backs,
    OpStats* stats) {
  if (locked.owned) {
    co_await tc().hocl_.Unlock(locked.guard, std::move(write_backs),
                               system_->options().combine_commands, stats);
    co_return;
  }
  // Lane shared with the primary lock we still hold: the node stays
  // protected; just apply the write-backs.
  if (!write_backs.empty()) {
    rdma::RdmaResult r =
        co_await system_->fabric()
            .qp(options_.cs_id, locked.addr.node)
            .PostBatch(std::move(write_backs));
    if (stats != nullptr) stats->round_trips++;
    SHERMAN_CHECK(r.status.ok());
  }
}

sim::Task<Status> Migrator::ReplaceChild(Key key, uint8_t level,
                                         rdma::GlobalAddress old_addr,
                                         rdma::GlobalAddress new_addr,
                                         rdma::GlobalAddress held,
                                         OpStats* stats) {
  TreeClient& t = tc();
  const TreeShape& shape = system_->options().shape;
  for (uint32_t attempt = 0; attempt < options_.max_retries; attempt++) {
    StatusOr<rdma::GlobalAddress> pr =
        co_await t.FindNodeAddr(key, level, stats);
    if (!pr.ok()) {
      if (pr.status().IsRetry()) continue;
      co_return pr.status();
    }
    std::vector<uint8_t> buf(node_size());
    StatusOr<LockedNode> lr =
        co_await LockSecond(*pr, key, held, buf.data(), stats, level);
    if (!lr.ok()) {
      if (lr.status().IsRetry()) {
        t.cache_.InvalidateUpperCovering(key, *pr);
        continue;
      }
      co_return lr.status();
    }
    LockedNode locked = *lr;
    NodeView view(buf.data(), &shape);
    bool found = false;
    if (view.level() == level) {
      if (view.leftmost_child() == old_addr) {
        view.set_leftmost_child(new_addr);
        found = true;
      } else {
        const uint32_t n = view.count();
        for (uint32_t i = 0; i < n; i++) {
          if (view.InternalChild(i) == old_addr) {
            view.SetInternalEntry(i, view.InternalKey(i), new_addr);
            found = true;
            break;
          }
        }
      }
    }
    if (!found) {  // structure raced between resolve and lock; re-resolve
      co_await UnlockSecond(locked, {}, stats);
      continue;
    }
    t.SealNode(view, /*structural_change=*/true);
    std::vector<rdma::WorkRequest> wrs;
    wrs.push_back(
        rdma::WorkRequest::Write(locked.addr, buf.data(), node_size()));
    co_await UnlockSecond(locked, std::move(wrs), stats);
    // Our own cache may still hold the pre-flip parse of this node.
    t.cache_.Invalidate(key, locked.addr);
    co_return Status::OK();
  }
  co_return Status::TimedOut("replace-child retries exhausted");
}

sim::Task<Status> Migrator::FixLeftSibling(Key lo, uint8_t level,
                                           rdma::GlobalAddress old_addr,
                                           rdma::GlobalAddress new_addr,
                                           rdma::GlobalAddress hint,
                                           rdma::GlobalAddress held,
                                           OpStats* stats) {
  SHERMAN_CHECK(lo > 0);
  TreeClient& t = tc();
  const TreeShape& shape = system_->options().shape;
  for (uint32_t attempt = 0; attempt < options_.max_retries; attempt++) {
    rdma::GlobalAddress start = hint;
    hint = rdma::kNullAddress;  // trust the shortcut only once
    if (start.is_null()) {
      if (level == 0) {
        StatusOr<TreeClient::LeafRef> r =
            co_await t.FindLeafAddr(lo - 1, stats, /*allow_hint=*/false);
        if (!r.ok()) {
          if (r.status().IsRetry()) continue;
          co_return r.status();
        }
        start = r->addr;
      } else {
        StatusOr<rdma::GlobalAddress> r =
            co_await t.FindNodeAddr(lo - 1, level, stats);
        if (!r.ok()) {
          if (r.status().IsRetry()) continue;
          co_return r.status();
        }
        start = *r;
      }
    }
    std::vector<uint8_t> buf(node_size());
    StatusOr<LockedNode> lr =
        co_await LockSecond(start, lo - 1, held, buf.data(), stats, level);
    if (!lr.ok()) {
      if (lr.status().IsRetry()) continue;
      co_return lr.status();
    }
    LockedNode locked = *lr;
    NodeView view(buf.data(), &shape);
    // The locked node covers lo-1; it is the direct left neighbor exactly
    // when its hi fence is our lo and its sibling is the node being
    // replaced. Anything else is a transient race — re-resolve.
    if (view.level() != level || view.hi_fence() != lo ||
        view.sibling() != old_addr) {
      co_await UnlockSecond(locked, {}, stats);
      continue;
    }
    view.set_sibling(new_addr);
    t.SealNode(view, /*structural_change=*/true);
    std::vector<rdma::WorkRequest> wrs;
    wrs.push_back(
        rdma::WorkRequest::Write(locked.addr, buf.data(), node_size()));
    co_await UnlockSecond(locked, std::move(wrs), stats);
    stats_.sibling_fixes++;
    co_return Status::OK();
  }
  co_return Status::TimedOut("sibling-fix retries exhausted");
}

sim::Task<Status> Migrator::MoveLockedNode(TreeClient::Locked locked,
                                           std::vector<uint8_t>* buf,
                                           uint8_t level, Key cursor,
                                           uint16_t target,
                                           rdma::GlobalAddress sibling_hint,
                                           rdma::GlobalAddress* naddr_out,
                                           OpStats* stats) {
  SHERMAN_TSPAN(stats != nullptr ? stats->trace : nullptr, "migrate.move_node",
                level, target);
  TreeClient& t = tc();
  const TreeOptions& o = system_->options();
  const bool combine = o.combine_commands;
  NodeView view(buf->data(), &o.shape);
  const Key node_lo = view.lo_fence();
  const int cs = options_.cs_id;

  // Copy the frozen node into a shard-private chunk on the target.
  const rdma::GlobalAddress naddr = co_await AllocOnTarget(target, node_size());
  if (naddr.is_null()) {
    co_await t.hocl_.Unlock(locked.guard, {}, combine, stats);
    co_return Status::OutOfMemory("target MS exhausted during migration");
  }

  // Anchor the flip before its first remote write: the parent's
  // child-pointer swap (ReplaceChild) is the commit point a survivor's
  // Recoverer keys on — rollback retires the unflipped copy (and revives
  // a pre-flip leaf tombstone); replay completes the B-link repair and
  // retires the source.
  recover::IntentRecord intent;
  intent.op = recover::IntentOp::kFlip;
  intent.level = level;
  intent.lo = node_lo;
  intent.hi = view.hi_fence();
  intent.primary = locked.addr;
  intent.second = naddr;
  const int intent_slot = co_await t.intents_.Publish(intent, stats);
  co_await fault::Injector().AtSite(kCrashFlipIntent, cs);

  rdma::WorkRequest copy_wr =
      rdma::WorkRequest::Write(naddr, buf->data(), node_size());
  copy_wr.intent_slot = static_cast<uint8_t>(intent_slot);
  rdma::RdmaResult w =
      co_await system_->fabric().qp(cs, target).Post(copy_wr);
  SHERMAN_CHECK(w.status.ok());
  stats_.bytes_copied += node_size();
  co_await fault::Injector().AtSite(kCrashFlipCopy, cs);

  // Tombstone ordering is level-dependent and safety-critical:
  //  - LEAVES tombstone BEFORE the flip. Once the free flag lands, every
  //    lock-free reader holding the old address bounces and re-traverses,
  //    so nobody can serve the frozen content after a later write lands on
  //    the live copy (readers spin on restart for the couple of round
  //    trips until the flip publishes N; writers just block on the lock).
  //  - INTERNALS tombstone AFTER the flip + sibling repair. Their content
  //    is routing info only — stale routing is healed by fence checks and
  //    sibling chases — so there is no stale-read window to close and no
  //    reason to make readers spin.
  const bool tombstone_first = level == 0;
  const auto tombstone_wr = [&](bool free_flag) {
    view.set_free(free_flag);
    if (o.consistency == TreeOptions::Consistency::kChecksum) {
      view.UpdateChecksum();
    }
    rdma::WorkRequest wr =
        rdma::WorkRequest::Write(locked.addr, buf->data(), node_size());
    wr.intent_slot = static_cast<uint8_t>(intent_slot);
    return wr;
  };
  if (tombstone_first) {
    rdma::RdmaResult tw =
        co_await t.QpFor(locked.addr).Post(tombstone_wr(true));
    SHERMAN_CHECK(tw.status.ok());
    co_await fault::Injector().AtSite(kCrashFlipTombstone, cs);
  }

  // FLIP: fresh descents now resolve to the copy. The source's lock is
  // held across this multi-RTT phase (and the sibling repair below);
  // renew its lease at each phase boundary — free unless a lease period
  // passed — so a waiter can never mistake this live protocol for a
  // crashed holder.
  co_await t.hocl_.RenewLease(locked.guard, stats);
  Status st = co_await ReplaceChild(cursor, static_cast<uint8_t>(level + 1),
                                    locked.addr, naddr, locked.addr, stats);
  if (!st.ok()) {
    if (tombstone_first) {
      // Roll the tombstone back before abandoning: the parent still points
      // at the source, so it must stay live or its keys would vanish.
      std::vector<rdma::WorkRequest> undo;
      undo.push_back(tombstone_wr(false));
      co_await t.hocl_.Unlock(locked.guard, std::move(undo), combine, stats);
    } else {
      co_await t.hocl_.Unlock(locked.guard, {}, combine, stats);
    }
    t.intents_.ClearAsync(intent_slot);
    co_return st;
  }
  // The parent's child pointer now names the copy: private -> live.
  if (dmsan::Active()) {
    if (dmsan::Checker* c = system_->dmsan_checker()) {
      c->PublishNode(naddr, level);
    }
  }
  // Re-home the leaf hint: same lo fence, new address. The publish lands
  // on the copy's MS; the overwrite path in the source MS's directory (if
  // source and target share an MS) or the invalidate below (if not)
  // drops the old mapping before the source is freed.
  if (level == 0) co_await t.HintPublish(naddr, node_lo, stats);
  co_await fault::Injector().AtSite(kCrashFlipFlipped, cs);
  // Repair the B-link chain so sibling chases skip the tombstone. (On a
  // sibling-fix failure the flipped parent is authoritative and chain
  // restarts heal through it, so the node stays in whatever tombstone
  // state it already reached — the cleared intent preserves exactly the
  // pre-crash-tolerance semantics of that abort.)
  if (node_lo != 0) {
    co_await t.hocl_.RenewLease(locked.guard, stats);
    st = co_await FixLeftSibling(node_lo, level, locked.addr, naddr,
                                 sibling_hint, locked.addr, stats);
    if (!st.ok()) {
      co_await t.hocl_.Unlock(locked.guard, {}, combine, stats);
      t.intents_.ClearAsync(intent_slot);
      co_return st;
    }
  }
  co_await fault::Injector().AtSite(kCrashFlipSibfixed, cs);
  if (!tombstone_first) {
    // Internal sources tombstone after the flip. The write is posted on
    // its own (not folded into the unlock batch) so the free below — and
    // the crash window between them — always sees a tombstoned source.
    rdma::RdmaResult tw =
        co_await t.QpFor(locked.addr).Post(tombstone_wr(true));
    SHERMAN_CHECK(tw.status.ok());
  }
  // Retire the tombstoned source through the MS's epoch-keyed grace list
  // instead of leaking it: the bytes stay a stable tombstone until every
  // operation pinned at or before this instant has retired, then the node
  // is recycled into fresh allocations. Free and intent-clear precede the
  // unlock so every crash window leaves a held lane or an intent (or
  // both) for a survivor to find.
  if (level == 0) co_await t.HintInvalidate(locked.addr, stats);
  co_await system_->fabric()
      .qp(cs, locked.addr.node)
      .Rpc(kRpcFreeNode, locked.addr.offset, node_size());
  if (stats != nullptr) stats->round_trips++;
  co_await fault::Injector().AtSite(kCrashFlipFreed, cs);
  t.intents_.ClearAsync(intent_slot);
  co_await t.hocl_.Unlock(locked.guard, {}, combine, stats);
  stats_.source_nodes_freed++;
  *naddr_out = naddr;
  co_return Status::OK();
}

sim::Task<Status> Migrator::LeafPass(Key lo, Key hi, uint16_t target,
                                     uint64_t* moved) {
  SHERMAN_TSPAN(&trace_, "migrate.leaf_pass", lo, hi);
  TreeClient& t = tc();
  const TreeOptions& o = system_->options();
  const bool combine = o.combine_commands;
  Key cursor = lo;
  rdma::GlobalAddress prev_new = rdma::kNullAddress;
  Key prev_new_hi = 0;
  uint32_t stuck = 0;

  while (cursor < hi) {
    if (++stuck > options_.max_retries) {
      co_return Status::TimedOut("leaf pass stuck");
    }
    // Pin the reclamation epoch per iteration: the resolve -> lock -> move
    // window holds raw addresses, but a whole-pass pin would stall node
    // recycling for the full migration.
    EpochPin pin(&system_->reclaim_epoch(), options_.cs_id);
    OpStats stats;
    stats.trace = &trace_;
    // Never via the leaf-hint mirror: the migration pass itself is what
    // makes hints stale, and this locate-lock-validate loop has no
    // stale-entry feedback — a wrong hint would re-serve until the
    // stuck bound trips.
    StatusOr<TreeClient::LeafRef> ref =
        co_await t.FindLeafAddr(cursor, &stats, /*allow_hint=*/false);
    if (!ref.ok()) {
      if (ref.status().IsRetry()) continue;
      co_return ref.status();
    }
    std::vector<uint8_t> buf(node_size());
    if (ref->addr.node == target) {
      // Already home: validate lock-free and advance without disturbing
      // writers (re-walk passes over mostly-migrated ranges stay cheap).
      Status st = co_await t.ReadNodeChecked(ref->addr, buf.data(), &stats);
      if (!st.ok()) co_return st;
      NodeView peek(buf.data(), &system_->options().shape);
      if (!peek.is_free() && peek.is_leaf() && peek.InFence(cursor)) {
        prev_new = ref->addr;
        prev_new_hi = peek.hi_fence();
        cursor = peek.hi_fence();
        stuck = 0;
        continue;
      }
      t.cache_.InvalidateLevel1Covering(cursor);  // stale plan; retry
      continue;
    }
    StatusOr<TreeClient::Locked> lr =
        co_await t.LockAndRead(ref->addr, cursor, buf.data(), &stats);
    if (!lr.ok()) {
      if (lr.status().IsRetry()) continue;
      co_return lr.status();
    }
    TreeClient::Locked locked = *lr;
    NodeView view(buf.data(), &o.shape);
    const Key leaf_lo = view.lo_fence();
    const Key leaf_hi = view.hi_fence();

    if (locked.addr.node == target) {  // already home (or migrated earlier)
      co_await t.hocl_.Unlock(locked.guard, {}, combine, &stats);
      prev_new = locked.addr;
      prev_new_hi = leaf_hi;
      cursor = leaf_hi;
      stuck = 0;
      continue;
    }

    const rdma::GlobalAddress hint =
        prev_new_hi == leaf_lo ? prev_new : rdma::kNullAddress;
    rdma::GlobalAddress naddr;
    Status st = co_await MoveLockedNode(locked, &buf, /*level=*/0, cursor,
                                        target, hint, &naddr, &stats);
    if (!st.ok()) co_return st;

    (*moved)++;
    stats_.leaves_moved++;
    prev_new = naddr;
    prev_new_hi = leaf_hi;
    cursor = leaf_hi;
    stuck = 0;
  }
  co_return Status::OK();
}

sim::Task<Status> Migrator::InternalPass(Key lo, Key hi, uint16_t target) {
  // With height 2 the only level-1 node is the root, which never moves.
  if (system_->DebugHeight() < 3) co_return Status::OK();
  SHERMAN_TSPAN(&trace_, "migrate.internal_pass", lo, hi);
  TreeClient& t = tc();
  const TreeOptions& o = system_->options();
  const bool combine = o.combine_commands;
  Key cursor = lo;
  rdma::GlobalAddress prev_new = rdma::kNullAddress;
  Key prev_new_hi = 0;
  uint32_t stuck = 0;

  while (cursor < hi) {
    if (++stuck > options_.max_retries) {
      co_return Status::TimedOut("internal pass stuck");
    }
    EpochPin pin(&system_->reclaim_epoch(), options_.cs_id);
    OpStats stats;
    stats.trace = &trace_;
    StatusOr<rdma::GlobalAddress> r = co_await t.FindNodeAddr(cursor, 1, &stats);
    if (!r.ok()) {
      if (r.status().IsRetry()) continue;
      co_return r.status();
    }
    std::vector<uint8_t> buf(node_size());
    StatusOr<TreeClient::Locked> lr =
        co_await t.LockAndRead(*r, cursor, buf.data(), &stats, /*level=*/1);
    if (!lr.ok()) {
      if (lr.status().IsRetry()) {
        t.cache_.InvalidateUpperCovering(cursor, *r);
        continue;
      }
      co_return lr.status();
    }
    TreeClient::Locked locked = *lr;
    NodeView view(buf.data(), &o.shape);
    const Key node_lo = view.lo_fence();
    const Key node_hi = view.hi_fence();
    if (view.level() != 1) {  // stale steering landed off-level
      co_await t.hocl_.Unlock(locked.guard, {}, combine, &stats);
      continue;
    }
    // Only nodes fully contained in the range move (boundary nodes are
    // shared with neighboring shards); the root never moves.
    const bool migrate = node_lo >= lo && node_hi <= hi &&
                         locked.addr.node != target &&
                         locked.addr != system_->DebugRootAddr();
    if (!migrate) {
      co_await t.hocl_.Unlock(locked.guard, {}, combine, &stats);
      if (locked.addr.node == target) {
        prev_new = locked.addr;
        prev_new_hi = node_hi;
      }
      cursor = node_hi;
      stuck = 0;
      continue;
    }

    const rdma::GlobalAddress hint =
        prev_new_hi == node_lo ? prev_new : rdma::kNullAddress;
    rdma::GlobalAddress naddr;
    Status st = co_await MoveLockedNode(locked, &buf, /*level=*/1, cursor,
                                        target, hint, &naddr, &stats);
    if (!st.ok()) co_return st;

    stats_.internals_moved++;
    prev_new = naddr;
    prev_new_hi = node_hi;
    cursor = node_hi;
    stuck = 0;
  }
  co_return Status::OK();
}

uint64_t Migrator::CountOffTarget(Key lo, Key hi, uint16_t target) const {
  const TreeShape& shape = system_->options().shape;
  rdma::Fabric& fabric = system_->fabric();
  rdma::GlobalAddress addr = system_->DebugRootAddr();
  // Descend live pointers to the leaf covering lo.
  for (uint64_t guard = 0; guard < kMaxWalkNodes; guard++) {
    NodeView view(fabric.HostRaw(addr), &shape);
    if (view.is_leaf()) break;
    addr = view.InternalChildFor(lo);
  }
  uint64_t off = 0;
  for (uint64_t guard = 0; guard < kMaxWalkNodes && !addr.is_null(); guard++) {
    NodeView view(fabric.HostRaw(addr), &shape);
    if (view.lo_fence() >= hi) break;
    if (addr.node != target) off++;
    addr = view.sibling();
  }
  return off;
}

sim::Task<Status> Migrator::MigrateRange(Key lo, Key hi, uint16_t target_ms) {
  if (lo < 1) lo = 1;
  if (hi <= lo) co_return Status::OK();
  SHERMAN_CHECK(target_ms <
                static_cast<uint16_t>(system_->fabric().num_memory_servers()));
  if (system_->DebugHeight() < 2) {
    co_return Status::InvalidArgument(
        "tree too shallow to migrate (root is a leaf)");
  }
  SHERMAN_TSPAN(&trace_, "migrate.range", lo, hi);
  const sim::SimTime t0 = system_->simulator().now();

  // Bounded copy passes: splits racing ahead of the walk can drop fresh
  // leaves on other servers; re-walk until a pass moves nothing.
  bool clean = false;
  for (uint32_t pass = 0; pass < options_.max_passes && !clean; pass++) {
    uint64_t moved = 0;
    Status st = co_await LeafPass(lo, hi, target_ms, &moved);
    stats_.passes++;
    if (!st.ok()) co_return st;
    clean = moved == 0;
  }
  Status st = co_await InternalPass(lo, hi, target_ms);
  if (!st.ok()) co_return st;
  if (!clean) stats_.residual_leaves += CountOffTarget(lo, hi, target_ms);

  // Flip-time invalidation broadcast: drop every compute server's cached
  // leaf translations for the moved range (they point at tombstones).
  for (int cs = 0; cs < system_->num_clients(); cs++) {
    system_->client(cs).cache().InvalidateKeyRange(lo, hi);
  }

  stats_.ranges_migrated++;
  stats_.busy_ns +=
      static_cast<uint64_t>(system_->simulator().now() - t0);
  co_return Status::OK();
}

sim::Task<Status> Migrator::MigrateShard(int shard, uint16_t target_ms) {
  SHERMAN_CHECK_MSG(map_ != nullptr && router_ != nullptr,
                    "MigrateShard needs a shard map and a router");
  const auto [lo, hi] = router_->ShardBounds(shard);
  Status st = co_await MigrateRange(lo, hi, target_ms);
  if (!st.ok()) co_return st;
  map_->Flip(shard, target_ms);
  SHERMAN_TINSTANT(&trace_, "migrate.flip", shard);
  stats_.flips++;
  stats_.shards_migrated++;
  co_return Status::OK();
}

}  // namespace sherman::migrate
