#include "migrate/shard_map.h"

#include "util/logging.h"

namespace sherman::migrate {

ShardMap::ShardMap(int num_shards, int founding_ms) {
  SHERMAN_CHECK(num_shards > 0 && founding_ms > 0);
  entries_.resize(num_shards);
  for (int s = 0; s < num_shards; s++) {
    entries_[s].home = static_cast<uint16_t>(s % founding_ms);
  }
}

uint32_t ShardMap::Flip(int shard, uint16_t new_home) {
  SHERMAN_CHECK(shard >= 0 && shard < num_shards());
  Entry& e = entries_[shard];
  e.home = new_home;
  e.version++;
  epoch_++;
  flips_++;
  return e.version;
}

}  // namespace sherman::migrate
