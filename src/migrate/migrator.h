// Live key-range migration to a (typically newly added) memory server —
// the data plane of elastic scale-out.
//
// The unit of movement is the logical shard (a key range, the same unit the
// adaptive router plans in). Migration is copy-then-flip at leaf
// granularity, concurrent with live traffic:
//
//   per leaf L (old address A on a source MS, fences [la, ha)):
//     1. lock A via HOCL — writers on either path now block or decline;
//        lock-free readers keep reading A (its content stays intact);
//     2. allocate N in a shard-private chunk on the target MS and RDMA-
//        WRITE A's bytes there (versions/checksum copied verbatim);
//     3. tombstone A: set its free flag (content otherwise intact).
//        Readers holding A's address now bounce and re-traverse — this
//        MUST precede the flip, or a reader could serve A's frozen
//        content after a newer write already landed on N;
//     4. FLIP: lock the level-1 parent covering la, swap its child pointer
//        A -> N, seal, write back + release (one doorbell). From this
//        instant every fresh descent resolves to N (readers spin on
//        restart for the couple of round trips between 3 and 4);
//     5. repair the B-link chain: lock the left neighbor (the previously
//        migrated leaf, or the leaf covering la-1) and point its sibling
//        at N; then release A's lock.
//
//   Level-1 internal nodes rebuilt in the second phase flip BEFORE they
//   tombstone: internal content is routing info only, stale routing is
//   healed by fence checks + sibling chases, so there is no stale-read
//   window to close and no reason to make readers spin.
//
//   Staleness detection is end-to-end, not broadcast: an in-flight op
//   holding the pre-flip address lands on the tombstone, fails the
//   free/fence validation that guards every read, invalidates its cached
//   translation, and re-traverses through the flipped parent. The shard
//   map's version/epoch bump redirects RPC-path routing, and the migrator
//   additionally drops cached level-1 translations for the moved range on
//   every compute server at flip time (the epoch-bump broadcast), saving
//   each client one wasted READ + restart per key.
//
//   After the leaf walk, level-1 internal nodes fully contained in the
//   range are rebuilt on the target the same way (lock, copy, flip the
//   level-2 parent, repair siblings, tombstone), so the shard's covering
//   index structure is target-local too. Splits that race ahead of the
//   walk can leave fresh leaves on other servers (compute-side allocation
//   is round-robin), so MigrateRange re-walks the range in bounded passes
//   until a pass moves nothing; under sustained writes a residual may
//   remain (counted, never incorrect — the tree stays a single coherent
//   B-link tree wherever its nodes live).
//
// All copy traffic runs through one compute server's QPs as ordinary
// simulated round trips, so migration cost and interference are visible to
// the fabric model and the benchmarks.
#ifndef SHERMAN_MIGRATE_MIGRATOR_H_
#define SHERMAN_MIGRATE_MIGRATOR_H_

#include <cstdint>

#include "core/btree.h"
#include "core/stats.h"
#include "migrate/shard_map.h"
#include "route/router.h"

namespace sherman::migrate {

struct MigratorOptions {
  int cs_id = 0;            // compute server whose QPs/locks drive the copy
  uint32_t max_passes = 8;  // bounded copy passes per range
  uint32_t max_retries = 64;  // per-node protocol retries (races)
};

class Migrator {
 public:
  // `map` and `router` are optional: a bare ShermanSystem can migrate raw
  // key ranges; a HybridSystem passes both so MigrateShard can resolve
  // shard bounds and flip the routing entry.
  Migrator(ShermanSystem* system, MigratorOptions options,
           ShardMap* map = nullptr, route::AdaptiveRouter* router = nullptr);

  Migrator(const Migrator&) = delete;
  Migrator& operator=(const Migrator&) = delete;

  // Moves every leaf (and contained level-1 node) whose fence interval
  // intersects [lo, hi) onto `target_ms`, concurrently with live traffic.
  // Requires a tree of height >= 2 (the root itself is never migrated).
  sim::Task<Status> MigrateRange(Key lo, Key hi, uint16_t target_ms);

  // Shard-level wrapper: resolves the shard's bounds from the router,
  // migrates the range, then flips the shard's home in the shard map and
  // bumps its version/epoch. Requires map + router.
  sim::Task<Status> MigrateShard(int shard, uint16_t target_ms);

  const MigrationStats& stats() const { return stats_; }

 private:
  // A second node locked while the migrated node's lock is already held.
  // HOCL hashes node addresses into a finite lock table, so the second
  // node can collide onto the lane we already own; in that case it is
  // already exclusively ours (owned = false) and must not be re-acquired —
  // waiting on our own lane would self-deadlock.
  struct LockedNode {
    rdma::GlobalAddress addr;
    LockGuard guard;
    bool owned = false;
  };

  // One walk over [lo, hi): moves every off-target leaf; `*moved` counts
  // relocations.
  sim::Task<Status> LeafPass(Key lo, Key hi, uint16_t target, uint64_t* moved);
  // Moves level-1 internal nodes contained in [lo, hi) onto the target.
  sim::Task<Status> InternalPass(Key lo, Key hi, uint16_t target);

  // The shared copy/flip/repair/tombstone core both passes use: moves the
  // LOCKED node whose content is in `*buf` (level `level`, covering
  // `cursor`) to `target`, releases the lock in every outcome, and on
  // success stores the copy's address in `*naddr_out`. Owns the one
  // safety-critical ordering difference between the levels (tombstone
  // before vs after the flip) — see the implementation comment.
  sim::Task<Status> MoveLockedNode(TreeClient::Locked locked,
                                   std::vector<uint8_t>* buf, uint8_t level,
                                   Key cursor, uint16_t target,
                                   rdma::GlobalAddress sibling_hint,
                                   rdma::GlobalAddress* naddr_out,
                                   OpStats* stats);

  // Swaps the child pointer `old_addr` -> `new_addr` in the level-`level`
  // node covering `key`, under its HOCL lock (`held` = the node lock the
  // caller already owns, for lane-collision detection).
  sim::Task<Status> ReplaceChild(Key key, uint8_t level,
                                 rdma::GlobalAddress old_addr,
                                 rdma::GlobalAddress new_addr,
                                 rdma::GlobalAddress held, OpStats* stats);
  // Points the sibling pointer of the level-`level` left neighbor of the
  // node [lo, ...) (currently `old_addr`) at `new_addr`, under the
  // neighbor's lock. `hint` short-cuts to the previously migrated node.
  sim::Task<Status> FixLeftSibling(Key lo, uint8_t level,
                                   rdma::GlobalAddress old_addr,
                                   rdma::GlobalAddress new_addr,
                                   rdma::GlobalAddress hint,
                                   rdma::GlobalAddress held, OpStats* stats);

  // TreeClient::LockAndRead with lane-collision handling against `held`:
  // locks the node at `addr` (chasing siblings to the level-`level` node
  // covering `key`) unless it shares `held`'s lane, in which case it is
  // already ours.
  sim::Task<StatusOr<LockedNode>> LockSecond(rdma::GlobalAddress addr, Key key,
                                             rdma::GlobalAddress held,
                                             uint8_t* buf, OpStats* stats,
                                             uint8_t level);
  sim::Task<void> UnlockSecond(LockedNode locked,
                               std::vector<rdma::WorkRequest> write_backs,
                               OpStats* stats);
  bool SameLane(rdma::GlobalAddress a, rdma::GlobalAddress b) const;

  // Bump allocation in shard-private chunks RPC'd from the target MS.
  sim::Task<rdma::GlobalAddress> AllocOnTarget(uint16_t ms, uint32_t size);

  // Host-memory (control-plane) count of live leaves overlapping [lo, hi)
  // that are not on `target` — the residual metric when passes run out.
  uint64_t CountOffTarget(Key lo, Key hi, uint16_t target) const;

  TreeClient& tc() { return system_->client(options_.cs_id); }
  uint32_t node_size() const { return system_->options().shape.node_size; }

  ShermanSystem* system_;
  MigratorOptions options_;
  ShardMap* map_;
  route::AdaptiveRouter* router_;

  uint16_t chunk_ms_ = 0;
  rdma::GlobalAddress chunk_base_ = rdma::kNullAddress;
  uint64_t chunk_used_ = 0;

  MigrationStats stats_;
  // Trace context on the shared migrator ring. A Migrator runs one
  // migration coroutine chain at a time, so mutating scopes are safe.
  obs::TraceCtx trace_;
};

}  // namespace sherman::migrate

#endif  // SHERMAN_MIGRATE_MIGRATOR_H_
