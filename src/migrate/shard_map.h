// ShardMap: the versioned control-plane table mapping each logical key-range
// shard to its home memory server.
//
// At construction every shard is homed by the founding static rule
// (shard % founding_ms), matching the DEX-style pinning the router used
// before elastic scale-out existed. A live migration ends with Flip(): the
// shard's home changes, its version bumps, and the map-wide epoch bumps.
// Clients compare epochs to notice that some shard moved and re-resolve;
// per-shard versions let them tell exactly which translation went stale.
//
// The map itself is a control-plane object (no simulated traffic): in the
// real system it would live in a metadata service and be pushed to compute
// servers on change. Data-plane staleness is still detected end-to-end —
// a one-sided op holding a pre-flip GlobalAddress lands on a tombstoned
// node, fails the free/fence validation, and re-traverses (see
// migrate/migrator.h for the protocol).
#ifndef SHERMAN_MIGRATE_SHARD_MAP_H_
#define SHERMAN_MIGRATE_SHARD_MAP_H_

#include <cstdint>
#include <vector>

namespace sherman::migrate {

class ShardMap {
 public:
  ShardMap(int num_shards, int founding_ms);

  ShardMap(const ShardMap&) = delete;
  ShardMap& operator=(const ShardMap&) = delete;

  int num_shards() const { return static_cast<int>(entries_.size()); }

  uint16_t home(int shard) const { return entries_[shard].home; }
  uint32_t version(int shard) const { return entries_[shard].version; }

  // Bumped once per Flip(); a cheap "did anything move?" check for clients
  // that cached translations.
  uint64_t epoch() const { return epoch_; }

  // Atomically (control-plane) re-homes `shard`. Returns the shard's new
  // version.
  uint32_t Flip(int shard, uint16_t new_home);

  uint64_t flips() const { return flips_; }

 private:
  struct Entry {
    uint16_t home = 0;
    uint32_t version = 0;
  };

  std::vector<Entry> entries_;
  uint64_t epoch_ = 0;
  uint64_t flips_ = 0;
};

}  // namespace sherman::migrate

#endif  // SHERMAN_MIGRATE_SHARD_MAP_H_
