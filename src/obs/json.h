// Minimal streaming JSON writer shared by the observability exporters
// (chrome://tracing dumps, metrics snapshots, BENCH_*.json telemetry).
//
// Deterministic by construction: no wall-clock, no pointer values, no
// locale-dependent formatting — identical inputs produce byte-identical
// output, which is what lets determinism_test diff whole trace and
// telemetry files across seeded runs.
#ifndef SHERMAN_OBS_JSON_H_
#define SHERMAN_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sherman::obs {

std::string JsonEscape(const std::string& s);

// Emits one JSON document into an internal string. The writer tracks
// nesting and comma placement; callers just interleave Key() with value
// emitters inside objects, or call value emitters directly inside arrays.
class JsonWriter {
 public:
  JsonWriter() { stack_.reserve(16); }

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  JsonWriter& Key(const std::string& name);

  JsonWriter& String(const std::string& v);
  JsonWriter& Int(int64_t v);
  JsonWriter& Uint(uint64_t v);
  // Doubles print with %.17g then trim: shortest round-trippable and
  // deterministic (the C locale is assumed, as everywhere in the repo).
  JsonWriter& Double(double v);
  JsonWriter& Bool(bool v);
  JsonWriter& Null();

  // Convenience: Key(name) + value.
  JsonWriter& Field(const std::string& k, const std::string& v) {
    return Key(k).String(v);
  }
  JsonWriter& Field(const std::string& k, const char* v) {
    return Key(k).String(v);
  }
  JsonWriter& Field(const std::string& k, int64_t v) { return Key(k).Int(v); }
  JsonWriter& Field(const std::string& k, uint64_t v) { return Key(k).Uint(v); }
  JsonWriter& Field(const std::string& k, int v) {
    return Key(k).Int(static_cast<int64_t>(v));
  }
  JsonWriter& Field(const std::string& k, double v) { return Key(k).Double(v); }
  JsonWriter& Field(const std::string& k, bool v) { return Key(k).Bool(v); }

  // The finished document. Valid once every Begin* has been closed.
  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void BeforeValue();

  std::string out_;
  // One frame per open container: 'O' (object) / 'A' (array), plus
  // whether a value has already been written at this level and whether a
  // key is pending.
  struct Frame {
    char kind;
    bool has_value = false;
    bool key_pending = false;
  };
  std::vector<Frame> stack_;
};

}  // namespace sherman::obs

#endif  // SHERMAN_OBS_JSON_H_
