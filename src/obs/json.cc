#include "obs/json.h"

#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace sherman::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) return;
  Frame& top = stack_.back();
  if (top.kind == 'O') {
    SHERMAN_CHECK_MSG(top.key_pending, "JSON object value without a key");
    top.key_pending = false;
  } else {
    if (top.has_value) out_ += ',';
  }
  top.has_value = true;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back({'O'});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  SHERMAN_CHECK(!stack_.empty() && stack_.back().kind == 'O' &&
                !stack_.back().key_pending);
  stack_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back({'A'});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  SHERMAN_CHECK(!stack_.empty() && stack_.back().kind == 'A');
  stack_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  SHERMAN_CHECK(!stack_.empty() && stack_.back().kind == 'O' &&
                !stack_.back().key_pending);
  if (stack_.back().has_value) out_ += ',';
  // has_value is set by the value itself; mark the key as pending.
  stack_.back().has_value = true;
  stack_.back().key_pending = true;
  out_ += '"';
  out_ += JsonEscape(name);
  out_ += "\":";
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& v) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t v) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Double(double v) {
  BeforeValue();
  if (!std::isfinite(v)) {
    // JSON has no Infinity/NaN; null keeps the document parseable.
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shortest representation that round-trips, so common values
  // print as "0.5" instead of "0.50000000000000000".
  for (int prec = 1; prec < 17; prec++) {
    char probe[64];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    double back;
    std::sscanf(probe, "%lf", &back);
    if (back == v) {
      out_ += probe;
      return *this;
    }
  }
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

}  // namespace sherman::obs
