#include "obs/bridge.h"

#include "recover/recoverer.h"

namespace sherman::obs {

void AddToSnapshot(MetricsSnapshot* s, const OpStats& op) {
  s->AddCounter("op.round_trips", op.round_trips);
  s->AddCounter("op.read_retries", op.read_retries);
  s->AddCounter("op.lock_retries", op.lock_retries);
  s->AddCounter("op.bytes_written", op.bytes_written);
  s->AddCounter("op.handovers", op.used_handover ? 1 : 0);
  s->AddCounter("op.cache_hits", op.cache_hits);
  s->AddCounter("op.cache_misses", op.cache_misses);
}

void AddToSnapshot(MetricsSnapshot* s, const RunStats& run) {
  s->AddCounter("run.ops", run.ops);
  s->AddCounter("run.lock_retries", run.lock_retries);
  s->AddCounter("run.handovers", run.handovers);
  s->AddCounter("run.cache_hits", run.cache_hits);
  s->AddCounter("run.cache_misses", run.cache_misses);
  s->histograms["run.latency_ns"].Merge(run.latency_ns);
  s->histograms["run.round_trips"].Merge(run.round_trips);
  s->histograms["run.read_retries"].Merge(run.read_retries);
  s->histograms["run.write_bytes"].Merge(run.write_bytes);
}

void AddToSnapshot(MetricsSnapshot* s, const RouteStats& route) {
  s->AddCounter("route.ops_one_sided", route.ops_one_sided);
  s->AddCounter("route.ops_rpc", route.ops_rpc);
  s->AddCounter("route.rpc_fallbacks", route.rpc_fallbacks);
  s->AddCounter("route.epochs", route.epochs);
  s->AddCounter("route.shard_flips", route.shard_flips);
  s->AddCounter("route.lat_one_sided_ns", route.lat_one_sided_ns);
  s->AddCounter("route.lat_rpc_ns", route.lat_rpc_ns);
}

void AddToSnapshot(MetricsSnapshot* s, const MigrationStats& mig) {
  s->AddCounter("migrate.shards_migrated", mig.shards_migrated);
  s->AddCounter("migrate.ranges_migrated", mig.ranges_migrated);
  s->AddCounter("migrate.leaves_moved", mig.leaves_moved);
  s->AddCounter("migrate.internals_moved", mig.internals_moved);
  s->AddCounter("migrate.passes", mig.passes);
  s->AddCounter("migrate.bytes_copied", mig.bytes_copied);
  s->AddCounter("migrate.chunk_rpcs", mig.chunk_rpcs);
  s->AddCounter("migrate.sibling_fixes", mig.sibling_fixes);
  s->AddCounter("migrate.residual_leaves", mig.residual_leaves);
  s->AddCounter("migrate.source_nodes_freed", mig.source_nodes_freed);
  s->AddCounter("migrate.flips", mig.flips);
  s->AddCounter("migrate.busy_ns", mig.busy_ns);
}

void AddToSnapshot(MetricsSnapshot* s, const ReclaimStats& rec) {
  s->AddCounter("reclaim.leaf_merges", rec.leaf_merges);
  s->AddCounter("reclaim.merge_aborts", rec.merge_aborts);
  s->AddCounter("reclaim.nodes_freed", rec.nodes_freed);
}

void AddToSnapshot(MetricsSnapshot* s, const recover::RecoverStats& rec) {
  s->AddCounter("recover.recoveries", rec.recoveries);
  s->AddCounter("recover.partial_recoveries", rec.partial_recoveries);
  s->AddCounter("recover.intents_replayed", rec.intents_replayed);
  s->AddCounter("recover.intents_rolled_back", rec.intents_rolled_back);
  s->AddCounter("recover.lanes_swept", rec.lanes_swept);
  s->AddCounter("recover.orphans_freed", rec.orphans_freed);
  s->SetGauge("recover.last_duration_ns",
              static_cast<double>(rec.last_duration_ns));
}

}  // namespace sherman::obs
