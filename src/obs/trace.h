// Always-on per-operation tracing: lightweight spans with parent/child
// causality, recorded into fixed-size per-client ring buffers with
// deterministic sim-clock timestamps.
//
// Design constraints and how they are met:
//  - zero allocation on the hot path: span records live in preallocated
//    rings; names are interned static strings; Begin/End are a slot write;
//  - coroutine-safe causality: the current-parent pointer is NOT a global
//    or per-CS slot (client coroutines interleave at every co_await, so a
//    shared slot would mis-parent spans). Instead each logical operation
//    carries a TraceCtx, threaded to the lower layers through OpStats.
//    Two scope flavors exist:
//      SpanScope   opens a span and makes it the ctx's current parent
//                  until scope exit. ONLY safe in the linear section of
//                  the coroutine that owns the ctx (one op body). Helpers
//                  that fan out concurrently and share one ctx must not
//                  use it.
//      EventScope  opens a span whose parent is snapshotted at entry and
//                  never touches ctx->current. Safe anywhere, including
//                  helpers running concurrently against a shared ctx —
//                  this is what the deep shared paths (raw reads, lock
//                  acquisition) use.
//  - compile-to-nothing: the SHERMAN_TSPAN / SHERMAN_TEVENT /
//    SHERMAN_TINSTANT macros expand to `((void)0)` when the library is
//    built with SHERMAN_TRACE_ENABLED=0 (cmake -DSHERMAN_TRACING=OFF);
//    their arguments are not evaluated. The classes remain defined so
//    exporters and tests compile in both configurations;
//  - determinism: timestamps are simulated time, exports iterate sorted
//    containers — identical seeded runs produce byte-identical dumps.
//
// Exports: ChromeTraceJson() (load the file in chrome://tracing or
// https://ui.perfetto.dev), and FlightDump* — a human-readable last-N-spans
// dump that fires automatically on crash-point kills, Recoverer
// activations, and SHERMAN_CHECK failures.
#ifndef SHERMAN_OBS_TRACE_H_
#define SHERMAN_OBS_TRACE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.h"

#ifndef SHERMAN_TRACE_ENABLED
#define SHERMAN_TRACE_ENABLED 1
#endif

namespace sherman::obs {

// One span (or instant event: end_ns == start_ns). id is a ring-local
// 1-based sequence number; 0 means "empty slot" / "no parent".
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent = 0;
  const char* name = "";
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;  // 0 while open (instants are closed at birth)
  uint64_t a0 = 0;
  uint64_t a1 = 0;
};

// Fixed-size ring of span records. Old records are overwritten by new
// ones; End() of an overwritten span is a counted no-op.
class TraceRing {
 public:
  explicit TraceRing(uint32_t entries);

  uint64_t Begin(const char* name, uint64_t parent, uint64_t now,
                 uint64_t a0, uint64_t a1);
  void End(uint64_t id, uint64_t now);
  void Instant(const char* name, uint64_t parent, uint64_t now, uint64_t a0);

  // The record for `id` if it has not been overwritten.
  const SpanRecord* Find(uint64_t id) const;

  uint32_t capacity() const { return static_cast<uint32_t>(ring_.size()); }
  uint64_t spans_started() const { return next_ - 1; }
  uint64_t dropped_ends() const { return dropped_ends_; }

  // Visits live records oldest-first.
  void ForEach(const std::function<void(const SpanRecord&)>& fn) const;

 private:
  uint64_t SlotFor(uint64_t id) const { return (id - 1) & mask_; }

  std::vector<SpanRecord> ring_;
  uint64_t mask_;
  uint64_t next_ = 1;
  uint64_t dropped_ends_ = 0;
};

// Stable ring ids for the system's actors. Client compute servers use
// their cs id; system actors get reserved ranges so dumps stay readable.
struct RingId {
  static uint32_t Client(int cs) { return static_cast<uint32_t>(cs); }
  static uint32_t RpcExecutor(int ms) { return 0x4000u + static_cast<uint32_t>(ms); }
  static uint32_t Recoverer(int cs) { return 0x8000u + static_cast<uint32_t>(cs); }
  static uint32_t Migrator() { return 0xC000u; }
  static std::string Label(uint32_t ring_id);
};

struct TraceOptions {
  bool enabled = true;          // runtime master switch (also: SHERMAN_TRACE=0)
  uint32_t ring_entries = 4096; // per ring, rounded up to a power of two
  uint32_t flight_spans = 16;   // last-N spans per ring in flight dumps
};

class Tracer {
 public:
  explicit Tracer(sim::Simulator* sim, TraceOptions opts = {});
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool e) { enabled_ = e; }
  uint64_t now() const { return static_cast<uint64_t>(sim_->now()); }
  const TraceOptions& options() const { return opts_; }

  // Find-or-create (creation allocates; steady-state is a map lookup done
  // once per TraceCtx, not per span).
  TraceRing* Ring(uint32_t ring_id);
  const TraceRing* FindRing(uint32_t ring_id) const;

  // chrome://tracing "traceEvents" JSON for every ring.
  std::string ChromeTraceJson() const;

  // Human-readable last-N dump of one ring / every ring.
  std::string FlightDump(uint32_t ring_id, size_t last_n) const;
  std::string FlightDumpAll(size_t last_n) const;

  // Prints a flight dump to stderr (and remembers it for assertions).
  // `rings` empty = all rings. No-op when tracing is disabled.
  void DumpToStderr(const std::string& reason,
                    const std::vector<uint32_t>& rings);
  const std::string& last_flight_dump() const { return last_flight_dump_; }

 private:
  sim::Simulator* sim_;
  TraceOptions opts_;
  bool enabled_;
  std::map<uint32_t, std::unique_ptr<TraceRing>> rings_;
  std::string last_flight_dump_;
};

// Per-operation trace context. Owned by the coroutine (or component)
// driving the operation; lower layers reach it through OpStats::trace.
struct TraceCtx {
  Tracer* tracer = nullptr;
  TraceRing* ring = nullptr;
  uint64_t current = 0;  // innermost open SpanScope's id

  bool active() const {
    return tracer != nullptr && ring != nullptr && tracer->enabled();
  }

  // Null-safe factory: inert ctx when `tracer` is null or disabled.
  static TraceCtx For(Tracer* tracer, uint32_t ring_id) {
    TraceCtx ctx;
    if (tracer != nullptr && tracer->enabled()) {
      ctx.tracer = tracer;
      ctx.ring = tracer->Ring(ring_id);
    }
    return ctx;
  }
};

// RAII span that becomes the ctx's current parent for its extent. Only
// for the linear section of the coroutine owning the ctx (see file
// comment).
class SpanScope {
 public:
  SpanScope() = default;
  SpanScope(TraceCtx* ctx, const char* name, uint64_t a0 = 0,
            uint64_t a1 = 0) {
    if (ctx != nullptr && ctx->active()) {
      ctx_ = ctx;
      parent_ = ctx->current;
      id_ = ctx->ring->Begin(name, parent_, ctx->tracer->now(), a0, a1);
      ctx->current = id_;
    }
  }
  ~SpanScope() { End(); }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  void End() {
    if (ctx_ != nullptr) {
      ctx_->current = parent_;
      ctx_->ring->End(id_, ctx_->tracer->now());
      ctx_ = nullptr;
    }
  }
  uint64_t id() const { return id_; }

 private:
  TraceCtx* ctx_ = nullptr;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
};

// RAII leaf span: parent snapshotted at entry, ctx->current untouched —
// safe in helpers fanned out concurrently over a shared ctx.
class EventScope {
 public:
  EventScope() = default;
  EventScope(TraceCtx* ctx, const char* name, uint64_t a0 = 0,
             uint64_t a1 = 0) {
    if (ctx != nullptr && ctx->active()) {
      ctx_ = ctx;
      id_ = ctx->ring->Begin(name, ctx->current, ctx->tracer->now(), a0, a1);
    }
  }
  ~EventScope() { End(); }

  EventScope(const EventScope&) = delete;
  EventScope& operator=(const EventScope&) = delete;

  void End() {
    if (ctx_ != nullptr) {
      ctx_->ring->End(id_, ctx_->tracer->now());
      ctx_ = nullptr;
    }
  }
  uint64_t id() const { return id_; }

 private:
  TraceCtx* ctx_ = nullptr;
  uint64_t id_ = 0;
};

inline void TraceInstant(TraceCtx* ctx, const char* name, uint64_t a0 = 0) {
  if (ctx != nullptr && ctx->active()) {
    ctx->ring->Instant(name, ctx->current, ctx->tracer->now(), a0);
  }
}

// --- fatal-failure flight recorder ------------------------------------
// SHERMAN_CHECK failures call sherman::FatalDumpHook() (util/logging.h)
// before aborting; live tracers registered here dump their rings.
void RegisterFatalDumpTracer(Tracer* t);
void UnregisterFatalDumpTracer(Tracer* t);

}  // namespace sherman::obs

#if SHERMAN_TRACE_ENABLED
#define SHERMAN_TRACE_CAT_(a, b) a##b
#define SHERMAN_TRACE_CAT(a, b) SHERMAN_TRACE_CAT_(a, b)
// Mutating parent scope (linear op sections only).
#define SHERMAN_TSPAN(ctx, ...) \
  ::sherman::obs::SpanScope SHERMAN_TRACE_CAT(sherman_tspan_, __LINE__)( \
      (ctx), __VA_ARGS__)
// Leaf scope (safe under concurrent fan-out on a shared ctx).
#define SHERMAN_TEVENT(ctx, ...) \
  ::sherman::obs::EventScope SHERMAN_TRACE_CAT(sherman_tevent_, __LINE__)( \
      (ctx), __VA_ARGS__)
// Zero-duration instant event.
#define SHERMAN_TINSTANT(ctx, ...) \
  ::sherman::obs::TraceInstant((ctx), __VA_ARGS__)
#else
// Compiled out: no declaration, no argument evaluation, no code.
#define SHERMAN_TSPAN(ctx, ...) ((void)0)
#define SHERMAN_TEVENT(ctx, ...) ((void)0)
#define SHERMAN_TINSTANT(ctx, ...) ((void)0)
#endif

#endif  // SHERMAN_OBS_TRACE_H_
