// Unified metrics registry: named counters / gauges / histograms behind
// one registration / snapshot / merge API.
//
// Two ways in:
//  - owned metrics: a component calls GetCounter("lock.handovers") once,
//    keeps the returned pointer (stable for the registry's lifetime), and
//    bumps it on the hot path — one pointered add, no lookup;
//  - collectors: a component that already maintains cheap local counters
//    (rdma::Qp, Nic, IndexCache, ChunkManager, ...) registers a callback
//    that copies them into a snapshot at Snapshot() time. The hot path is
//    untouched; unification happens at the read side.
//
// Snapshots are plain value types that merge (cross-client aggregation)
// and diff (per-window deltas), and serialize deterministically to JSON —
// they are what the bench telemetry (BENCH_*.json) embeds.
//
// Naming scheme: dot-separated "<component>.<metric>" (see the README's
// Observability section): rdma.*, nic.*, lock.*, cache.*, route.*,
// migrate.*, recover.*, reclaim.*, alloc.*, run.*.
#ifndef SHERMAN_OBS_METRICS_H_
#define SHERMAN_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/histogram.h"

namespace sherman::obs {

class JsonWriter;

// Monotone event count. Merging sums; diffing subtracts.
class Counter {
 public:
  void Inc(uint64_t n = 1) { v_ += n; }
  uint64_t value() const { return v_; }
  void Reset() { v_ = 0; }

 private:
  uint64_t v_ = 0;
};

// Instantaneous level (queue depth, bytes outstanding). Merging sums
// (per-component levels add up across instances); diffing keeps the newer
// value — a level has no meaningful delta.
class Gauge {
 public:
  void Set(double v) { v_ = v; }
  void Add(double d) { v_ += d; }
  double value() const { return v_; }

 private:
  double v_ = 0;
};

// One consistent view of every registered metric. Also the unit of
// cross-client aggregation: benches merge per-client snapshots instead of
// hand-summing struct fields.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;

  // Cross-instance aggregation: counters and gauges sum, histograms merge.
  void Merge(const MetricsSnapshot& other);

  // Per-window delta against an earlier snapshot of the SAME registry:
  // counters subtract (missing-in-baseline counts as 0), gauges and
  // histograms keep this snapshot's value (levels and cumulative
  // distributions have no subtraction).
  MetricsSnapshot Since(const MetricsSnapshot& baseline) const;

  uint64_t counter(const std::string& name, uint64_t def = 0) const {
    auto it = counters.find(name);
    return it == counters.end() ? def : it->second;
  }
  double gauge(const std::string& name, double def = 0) const {
    auto it = gauges.find(name);
    return it == gauges.end() ? def : it->second;
  }

  void AddCounter(const std::string& name, uint64_t v) { counters[name] += v; }
  void SetGauge(const std::string& name, double v) { gauges[name] = v; }

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  // mean, min, max, p50, p90, p99, p999}}} — keys sorted (std::map), so
  // the output is deterministic.
  void WriteJson(JsonWriter* w) const;
  std::string ToJson() const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Find-or-create. Returned pointers stay valid for the registry's
  // lifetime (node-based map storage).
  Counter* GetCounter(const std::string& name) { return &counters_[name]; }
  Gauge* GetGauge(const std::string& name) { return &gauges_[name]; }
  Histogram* GetHistogram(const std::string& name) { return &histograms_[name]; }

  // Registers a read-side collector, invoked on every Snapshot(). The
  // callback must only write into the snapshot it is handed.
  using Collector = std::function<void(MetricsSnapshot*)>;
  void AddCollector(Collector fn) { collectors_.push_back(std::move(fn)); }

  // Owned metrics + every collector's view, in one consistent snapshot.
  MetricsSnapshot Snapshot() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::vector<Collector> collectors_;
};

// Serializes `h` as the standard histogram summary object.
void WriteHistogramJson(JsonWriter* w, const Histogram& h);

}  // namespace sherman::obs

#endif  // SHERMAN_OBS_METRICS_H_
