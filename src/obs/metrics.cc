#include "obs/metrics.h"

#include "obs/json.h"

namespace sherman::obs {

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [k, v] : other.counters) counters[k] += v;
  for (const auto& [k, v] : other.gauges) gauges[k] += v;
  for (const auto& [k, h] : other.histograms) histograms[k].Merge(h);
}

MetricsSnapshot MetricsSnapshot::Since(const MetricsSnapshot& baseline) const {
  MetricsSnapshot d;
  for (const auto& [k, v] : counters) {
    auto it = baseline.counters.find(k);
    d.counters[k] = v - (it == baseline.counters.end() ? 0 : it->second);
  }
  d.gauges = gauges;
  d.histograms = histograms;
  return d;
}

void WriteHistogramJson(JsonWriter* w, const Histogram& h) {
  w->BeginObject();
  w->Field("count", h.count());
  w->Field("mean", h.Mean());
  w->Field("min", h.min());
  w->Field("max", h.max());
  w->Field("p50", h.P50());
  w->Field("p90", h.P90());
  w->Field("p99", h.P99());
  w->Field("p999", h.Percentile(99.9));
  w->EndObject();
}

void MetricsSnapshot::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("counters").BeginObject();
  for (const auto& [k, v] : counters) w->Field(k, v);
  w->EndObject();
  w->Key("gauges").BeginObject();
  for (const auto& [k, v] : gauges) w->Field(k, v);
  w->EndObject();
  w->Key("histograms").BeginObject();
  for (const auto& [k, h] : histograms) {
    w->Key(k);
    WriteHistogramJson(w, h);
  }
  w->EndObject();
  w->EndObject();
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.Take();
}

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot s;
  for (const auto& [k, c] : counters_) s.counters[k] = c.value();
  for (const auto& [k, g] : gauges_) s.gauges[k] = g.value();
  for (const auto& [k, h] : histograms_) s.histograms[k] = h;
  for (const auto& fn : collectors_) fn(&s);
  return s;
}

}  // namespace sherman::obs
