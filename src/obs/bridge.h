// Bridges the pre-registry stats structs (core/stats.h and
// recover/recoverer.h) into obs::MetricsSnapshot, so every legacy counter
// is readable through the one registry/snapshot API and lands in
// BENCH_*.json under the standard dot-separated names.
//
// The structs stay the producer-side representation (they are cheap,
// typed, and already threaded through the hot paths); this is the
// read-side unification.
#ifndef SHERMAN_OBS_BRIDGE_H_
#define SHERMAN_OBS_BRIDGE_H_

#include "core/stats.h"
#include "obs/metrics.h"

namespace sherman::recover {
struct RecoverStats;
}  // namespace sherman::recover

namespace sherman::obs {

// op.* — a single operation's footprint (mostly useful in tests).
void AddToSnapshot(MetricsSnapshot* s, const OpStats& op);

// run.* — a measurement window's aggregate, histograms included.
void AddToSnapshot(MetricsSnapshot* s, const RunStats& run);

// route.* — hybrid router split and flip activity.
void AddToSnapshot(MetricsSnapshot* s, const RouteStats& route);

// migrate.* — live shard migration volume and convergence.
void AddToSnapshot(MetricsSnapshot* s, const MigrationStats& mig);

// reclaim.* — delete-path merging and grace-list frees.
void AddToSnapshot(MetricsSnapshot* s, const ReclaimStats& rec);

// recover.* — crash recovery protocol work.
void AddToSnapshot(MetricsSnapshot* s, const recover::RecoverStats& rec);

}  // namespace sherman::obs

#endif  // SHERMAN_OBS_BRIDGE_H_
