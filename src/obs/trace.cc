#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>

#include "obs/json.h"
#include "util/logging.h"

namespace sherman::obs {

namespace {

uint32_t RoundUpPow2(uint32_t v) {
  if (v < 2) return 2;
  v--;
  v |= v >> 1;
  v |= v >> 2;
  v |= v >> 4;
  v |= v >> 8;
  v |= v >> 16;
  return v + 1;
}

// The span name's component prefix ("rdma.read" -> "rdma"), used as the
// chrome trace category.
std::string NameCategory(const char* name) {
  const char* dot = std::strchr(name, '.');
  return dot == nullptr ? std::string(name)
                        : std::string(name, static_cast<size_t>(dot - name));
}

}  // namespace

TraceRing::TraceRing(uint32_t entries)
    : ring_(RoundUpPow2(entries)), mask_(ring_.size() - 1) {}

uint64_t TraceRing::Begin(const char* name, uint64_t parent, uint64_t now,
                          uint64_t a0, uint64_t a1) {
  uint64_t id = next_++;
  SpanRecord& r = ring_[SlotFor(id)];
  r.id = id;
  r.parent = parent;
  r.name = name;
  r.start_ns = now;
  r.end_ns = 0;
  r.a0 = a0;
  r.a1 = a1;
  return id;
}

void TraceRing::End(uint64_t id, uint64_t now) {
  if (id == 0) return;
  SpanRecord& r = ring_[SlotFor(id)];
  if (r.id != id) {
    // The span was overwritten while open (deep op in a small ring).
    dropped_ends_++;
    return;
  }
  r.end_ns = now;
}

void TraceRing::Instant(const char* name, uint64_t parent, uint64_t now,
                        uint64_t a0) {
  uint64_t id = Begin(name, parent, now, a0, 0);
  ring_[SlotFor(id)].end_ns = now;
}

const SpanRecord* TraceRing::Find(uint64_t id) const {
  if (id == 0) return nullptr;
  const SpanRecord& r = ring_[SlotFor(id)];
  return r.id == id ? &r : nullptr;
}

void TraceRing::ForEach(const std::function<void(const SpanRecord&)>& fn) const {
  if (next_ == 1) return;
  uint64_t newest = next_ - 1;
  uint64_t oldest = newest >= ring_.size() ? newest - ring_.size() + 1 : 1;
  for (uint64_t id = oldest; id <= newest; id++) {
    const SpanRecord& r = ring_[SlotFor(id)];
    if (r.id == id) fn(r);
  }
}

std::string RingId::Label(uint32_t ring_id) {
  char buf[32];
  if (ring_id >= 0xC000u) {
    std::snprintf(buf, sizeof(buf), "migrator");
  } else if (ring_id >= 0x8000u) {
    std::snprintf(buf, sizeof(buf), "recover/cs%u", ring_id - 0x8000u);
  } else if (ring_id >= 0x4000u) {
    std::snprintf(buf, sizeof(buf), "rpc/ms%u", ring_id - 0x4000u);
  } else {
    std::snprintf(buf, sizeof(buf), "cs%u", ring_id);
  }
  return buf;
}

Tracer::Tracer(sim::Simulator* sim, TraceOptions opts)
    : sim_(sim), opts_(opts), enabled_(opts.enabled) {
  SHERMAN_CHECK(sim != nullptr);
  const char* env = std::getenv("SHERMAN_TRACE");
  if (env != nullptr && env[0] == '0' && env[1] == '\0') enabled_ = false;
}

Tracer::~Tracer() { UnregisterFatalDumpTracer(this); }

TraceRing* Tracer::Ring(uint32_t ring_id) {
  auto it = rings_.find(ring_id);
  if (it == rings_.end()) {
    it = rings_.emplace(ring_id, std::make_unique<TraceRing>(opts_.ring_entries))
             .first;
  }
  return it->second.get();
}

const TraceRing* Tracer::FindRing(uint32_t ring_id) const {
  auto it = rings_.find(ring_id);
  return it == rings_.end() ? nullptr : it->second.get();
}

std::string Tracer::ChromeTraceJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ns");
  w.Key("traceEvents").BeginArray();
  for (const auto& [ring_id, ring] : rings_) {
    // Thread-name metadata row so the viewer shows "cs0", "rpc/ms1", ...
    w.BeginObject();
    w.Field("name", "thread_name");
    w.Field("ph", "M");
    w.Field("pid", 0);
    w.Field("tid", static_cast<int64_t>(ring_id));
    w.Key("args").BeginObject().Field("name", RingId::Label(ring_id)).EndObject();
    w.EndObject();
    uint64_t now = this->now();
    ring->ForEach([&](const SpanRecord& r) {
      w.BeginObject();
      w.Field("name", r.name);
      w.Field("cat", NameCategory(r.name));
      w.Field("ph", "X");
      // chrome://tracing expects microseconds; keep ns resolution as
      // fractional us.
      w.Key("ts").Double(static_cast<double>(r.start_ns) / 1000.0);
      uint64_t end = r.end_ns == 0 ? now : r.end_ns;
      w.Key("dur").Double(static_cast<double>(end - r.start_ns) / 1000.0);
      w.Field("pid", 0);
      w.Field("tid", static_cast<int64_t>(ring_id));
      w.Key("args").BeginObject();
      w.Field("id", r.id);
      w.Field("parent", r.parent);
      if (r.a0 != 0) w.Field("a0", r.a0);
      if (r.a1 != 0) w.Field("a1", r.a1);
      if (r.end_ns == 0) w.Field("open", true);
      w.EndObject();
      w.EndObject();
    });
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

std::string Tracer::FlightDump(uint32_t ring_id, size_t last_n) const {
  const TraceRing* ring = FindRing(ring_id);
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "--- ring %s (%u): %llu spans, %llu dropped ends\n",
                RingId::Label(ring_id).c_str(), ring_id,
                static_cast<unsigned long long>(ring ? ring->spans_started() : 0),
                static_cast<unsigned long long>(ring ? ring->dropped_ends() : 0));
  out += line;
  if (ring == nullptr) return out;
  std::deque<const SpanRecord*> tail;
  ring->ForEach([&](const SpanRecord& r) {
    tail.push_back(&r);
    if (tail.size() > last_n) tail.pop_front();
  });
  for (const SpanRecord* r : tail) {
    if (r->end_ns != 0) {
      std::snprintf(line, sizeof(line),
                    "  #%llu %-24s parent=#%llu t=[%llu..%llu] dur=%lluns a0=%llu a1=%llu\n",
                    static_cast<unsigned long long>(r->id), r->name,
                    static_cast<unsigned long long>(r->parent),
                    static_cast<unsigned long long>(r->start_ns),
                    static_cast<unsigned long long>(r->end_ns),
                    static_cast<unsigned long long>(r->end_ns - r->start_ns),
                    static_cast<unsigned long long>(r->a0),
                    static_cast<unsigned long long>(r->a1));
    } else {
      std::snprintf(line, sizeof(line),
                    "  #%llu %-24s parent=#%llu t=[%llu..OPEN] a0=%llu a1=%llu\n",
                    static_cast<unsigned long long>(r->id), r->name,
                    static_cast<unsigned long long>(r->parent),
                    static_cast<unsigned long long>(r->start_ns),
                    static_cast<unsigned long long>(r->a0),
                    static_cast<unsigned long long>(r->a1));
    }
    out += line;
  }
  return out;
}

std::string Tracer::FlightDumpAll(size_t last_n) const {
  std::string out;
  for (const auto& [ring_id, ring] : rings_) {
    (void)ring;
    out += FlightDump(ring_id, last_n);
  }
  return out;
}

void Tracer::DumpToStderr(const std::string& reason,
                          const std::vector<uint32_t>& rings) {
  if (!enabled_) return;
  std::string dump;
  char hdr[192];
  std::snprintf(hdr, sizeof(hdr),
                "=== flight recorder (%s) @ sim t=%llu ns ===\n", reason.c_str(),
                static_cast<unsigned long long>(now()));
  dump += hdr;
  if (rings.empty()) {
    dump += FlightDumpAll(opts_.flight_spans);
  } else {
    for (uint32_t id : rings) dump += FlightDump(id, opts_.flight_spans);
  }
  dump += "=== end flight recorder ===\n";
  last_flight_dump_ = dump;
  std::fputs(dump.c_str(), stderr);
}

// --- fatal-failure hook ------------------------------------------------

namespace {
std::vector<Tracer*>& FatalTracers() {
  static std::vector<Tracer*> tracers;
  return tracers;
}
bool g_in_fatal_dump = false;
}  // namespace

void RegisterFatalDumpTracer(Tracer* t) {
  auto& v = FatalTracers();
  if (std::find(v.begin(), v.end(), t) == v.end()) v.push_back(t);
}

void UnregisterFatalDumpTracer(Tracer* t) {
  auto& v = FatalTracers();
  v.erase(std::remove(v.begin(), v.end(), t), v.end());
}

}  // namespace sherman::obs

namespace sherman {

// Declared in util/logging.h; runs just before a SHERMAN_CHECK abort.
void FatalDumpHook() {
  if (obs::g_in_fatal_dump) return;  // a CHECK inside the dump itself
  obs::g_in_fatal_dump = true;
  for (obs::Tracer* t : obs::FatalTracers()) {
    t->DumpToStderr("fatal check failure", {});
  }
  obs::g_in_fatal_dump = false;
}

}  // namespace sherman
