#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the library sources using the
# CMake compile database. Requires a configured build dir with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the default in CI).
#
#   scripts/run_tidy.sh [build_dir]
#
# Exit 0 = clean (or tool unavailable and REQUIRE_TIDY unset), 1 =
# findings, 2 = tool required but missing. Containers without clang-tidy
# skip with a warning so the script is safe in every pre-commit hook;
# CI sets REQUIRE_TIDY=1 to make absence a hard failure.
set -u -o pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"

TIDY=""
for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
            clang-tidy-15 clang-tidy-14; do
  if command -v "$cand" >/dev/null 2>&1; then TIDY="$cand"; break; fi
done

if [ -z "$TIDY" ]; then
  if [ -n "${REQUIRE_TIDY:-}" ]; then
    echo "run_tidy: clang-tidy not found and REQUIRE_TIDY is set" >&2
    exit 2
  fi
  echo "run_tidy: clang-tidy not installed; skipping (set REQUIRE_TIDY=1 to fail)" >&2
  exit 0
fi

if [ ! -f "$BUILD/compile_commands.json" ]; then
  echo "run_tidy: $BUILD/compile_commands.json missing; configure with" >&2
  echo "  cmake -B $BUILD -S $ROOT -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

JOBS="$(nproc 2>/dev/null || echo 4)"
mapfile -t SOURCES < <(find "$ROOT/src" -name '*.cc' | sort)
echo "run_tidy: $TIDY over ${#SOURCES[@]} files ($JOBS jobs)"

printf '%s\n' "${SOURCES[@]}" |
  xargs -P "$JOBS" -n 4 "$TIDY" -p "$BUILD" --quiet
status=$?

if [ "$status" -ne 0 ]; then
  echo "run_tidy: findings (see above)" >&2
  exit 1
fi
echo "run_tidy: clean"
