#!/usr/bin/env python3
"""Gate DMSan's runtime cost: the sanitizer rides every posted work
request, so its overhead on a bench smoke must stay under 10% (plus a
small absolute slack so sub-second runs don't gate on timer noise).

The bench reports contain no wall-clock field (simulated time only), so
this script times the subprocess itself: min of N runs each way, which
discards scheduler noise rather than averaging it in.

Usage: check_dmsan_overhead.py [bench_binary] [args...]
Defaults to the CI bench_pipeline smoke. Exit 0 = within budget.
"""

import os
import subprocess
import sys
import time

RUNS = 3
MAX_RELATIVE = 0.10   # DMSan may cost at most 10%...
SLACK_SECONDS = 0.25  # ...plus this much absolute timer-noise slack


def time_once(cmd, env):
    t0 = time.monotonic()
    r = subprocess.run(cmd, env=env, stdout=subprocess.DEVNULL,
                       stderr=subprocess.STDOUT)
    elapsed = time.monotonic() - t0
    if r.returncode != 0:
        print(f"FAIL: {' '.join(cmd)} exited {r.returncode}", file=sys.stderr)
        sys.exit(1)
    return elapsed


def best_of(cmd, dmsan, runs=RUNS):
    env = dict(os.environ)
    env["SHERMAN_DMSAN"] = "1" if dmsan else "0"
    return min(time_once(cmd, env) for _ in range(runs))


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    cmd = sys.argv[1:] or [
        os.path.join(root, "build", "bench_pipeline"),
        "--quick", "--keys=60000", "--threads=4",
    ]
    base = best_of(cmd, dmsan=False)
    with_dmsan = best_of(cmd, dmsan=True)
    budget = base * (1.0 + MAX_RELATIVE) + SLACK_SECONDS
    pct = 100.0 * (with_dmsan - base) / base if base > 0 else 0.0
    print(f"baseline     : {base:.3f}s  (min of {RUNS})")
    print(f"with DMSan   : {with_dmsan:.3f}s  ({pct:+.1f}%)")
    print(f"budget       : {budget:.3f}s  "
          f"(+{int(MAX_RELATIVE * 100)}% and {SLACK_SECONDS}s slack)")
    if with_dmsan > budget:
        print("FAIL: DMSan overhead exceeds budget", file=sys.stderr)
        return 1
    print("OK: DMSan overhead within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
