#!/usr/bin/env python3
"""Gate the tracing overhead on reported bench throughput.

Usage: check_trace_overhead.py ON.json OFF.json [max_overhead_frac]

Compares the per-label `mops` in two BENCH_*.json artifacts from the same
bench run with tracing on (SHERMAN_TRACE=1) and off (SHERMAN_TRACE=0).
Fails if any label's tracing-on throughput is more than `max_overhead_frac`
(default 0.02) below tracing-off.

Throughput here is simulated Mops: the simulator advances time only
between events, so tracing cannot slow the simulated clock and identical
seeded runs must report identical numbers. This gate therefore also
catches the worse failure mode — tracing perturbing simulation behavior.
"""
import json
import sys


def mops(path):
    with open(path, "rb") as f:
        doc = json.load(f)
    return {label: run["mops"] for label, run in doc["percentiles"].items()}


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    limit = float(argv[3]) if len(argv) > 3 else 0.02
    on, off = mops(argv[1]), mops(argv[2])
    if on.keys() != off.keys():
        print(f"FAIL label mismatch: on={sorted(on)} off={sorted(off)}",
              file=sys.stderr)
        return 1
    worst = 0.0
    failed = False
    for label in sorted(on):
        if off[label] <= 0:
            continue
        overhead = (off[label] - on[label]) / off[label]
        worst = max(worst, overhead)
        status = "OK  " if overhead <= limit else "FAIL"
        if overhead > limit:
            failed = True
        print(f"{status} {label}: on={on[label]:.4f} off={off[label]:.4f} "
              f"Mops, overhead {overhead * 100:.2f}%")
    print(f"worst overhead {worst * 100:.2f}% (limit {limit * 100:.1f}%)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
