#!/usr/bin/env python3
"""Validate BENCH_*.json telemetry artifacts against schema v1.

Usage: check_bench_json.py FILE [FILE ...]
       check_bench_json.py --dir DIR
Exits non-zero (listing every violation) if any file fails.

--dir validates every BENCH_*.json in DIR and additionally requires the
FULL reference set (one artifact per bench binary) to be present, so a
bench that silently stopped emitting telemetry fails the check. It also
fails on any stray BENCH_*.json OUTSIDE DIR (in DIR's parent tree, up to
two levels): DIR is the single canonical home for bench artifacts, and a
stray copy at e.g. the repo root silently goes stale.

Schema v1 (see src/bench/report.h):
  schema_version : int == 1
  bench          : non-empty string
  config         : object of scalars
  metrics        : {"counters": {str: int}, "gauges": {str: number},
                    "histograms": {str: object}}
  percentiles    : {label: {mops, ops, measured_ns, p50_us, p90_us, p99_us}}
  series         : {label: [{"t_ns": int, "ops": int}, ...]}
  tables         : [{"title": str, "columns": [str], "rows": [[str]]}]
  gates          : {name: {"passed": bool, "value": number}}
"""
import glob
import json
import os
import sys

SCALAR = (str, int, float, bool)
RUN_FIELDS = ("mops", "ops", "measured_ns", "p50_us", "p90_us", "p99_us")

# The CI reference set: every smoke-run bench must leave its artifact.
FULL_SET = ("churn", "elastic", "hybrid", "lookup1rtt", "pipeline", "rdwc",
            "recover", "varlen")


def check(path):
    errs = []

    def err(msg):
        errs.append(f"{path}: {msg}")

    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    if not isinstance(doc, dict):
        return [f"{path}: top level is not an object"]

    for key in ("schema_version", "bench", "config", "metrics", "percentiles",
                "series", "tables", "gates"):
        if key not in doc:
            err(f"missing top-level key '{key}'")
    if errs:
        return errs

    if doc["schema_version"] != 1:
        err(f"schema_version is {doc['schema_version']!r}, expected 1")
    if not isinstance(doc["bench"], str) or not doc["bench"]:
        err("'bench' must be a non-empty string")

    if not isinstance(doc["config"], dict):
        err("'config' must be an object")
    else:
        for k, v in doc["config"].items():
            if not isinstance(v, SCALAR):
                err(f"config['{k}'] is not a scalar")

    m = doc["metrics"]
    if not isinstance(m, dict):
        err("'metrics' must be an object")
    else:
        for sect in ("counters", "gauges", "histograms"):
            if sect not in m:
                err(f"metrics missing '{sect}'")
            elif not isinstance(m[sect], dict):
                err(f"metrics['{sect}'] must be an object")
        for k, v in m.get("counters", {}).items():
            if not isinstance(v, int) or isinstance(v, bool):
                err(f"counter '{k}' is not an integer")
        for k, v in m.get("gauges", {}).items():
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                err(f"gauge '{k}' is not a number")
        for k, v in m.get("histograms", {}).items():
            if not isinstance(v, dict):
                err(f"histogram '{k}' is not an object")

    if not isinstance(doc["percentiles"], dict):
        err("'percentiles' must be an object")
    else:
        for label, run in doc["percentiles"].items():
            if not isinstance(run, dict):
                err(f"percentiles['{label}'] is not an object")
                continue
            for f in RUN_FIELDS:
                if f not in run:
                    err(f"percentiles['{label}'] missing '{f}'")
                elif not isinstance(run[f], (int, float)) or \
                        isinstance(run[f], bool):
                    err(f"percentiles['{label}']['{f}'] is not a number")

    if not isinstance(doc["series"], dict):
        err("'series' must be an object")
    else:
        for label, pts in doc["series"].items():
            if not isinstance(pts, list):
                err(f"series['{label}'] is not an array")
                continue
            last_t = -1
            for i, p in enumerate(pts):
                if not isinstance(p, dict) or "t_ns" not in p or "ops" not in p:
                    err(f"series['{label}'][{i}] lacks t_ns/ops")
                    break
                if not isinstance(p["t_ns"], int) or not isinstance(
                        p["ops"], int):
                    err(f"series['{label}'][{i}] t_ns/ops not integers")
                    break
                if p["t_ns"] < last_t:
                    err(f"series['{label}'] t_ns not monotonic at [{i}]")
                    break
                last_t = p["t_ns"]

    if not isinstance(doc["tables"], list):
        err("'tables' must be an array")
    else:
        for i, t in enumerate(doc["tables"]):
            if not isinstance(t, dict) or not all(
                    k in t for k in ("title", "columns", "rows")):
                err(f"tables[{i}] lacks title/columns/rows")
                continue
            if not all(isinstance(c, str) for c in t["columns"]):
                err(f"tables[{i}] columns must be strings")
            for j, row in enumerate(t["rows"]):
                if not isinstance(row, list) or not all(
                        isinstance(c, str) for c in row):
                    err(f"tables[{i}].rows[{j}] must be an array of strings")
                    break

    if not isinstance(doc["gates"], dict):
        err("'gates' must be an object")
    else:
        for name, g in doc["gates"].items():
            if not isinstance(g, dict) or "passed" not in g or "value" not in g:
                err(f"gates['{name}'] lacks passed/value")
            elif not isinstance(g["passed"], bool):
                err(f"gates['{name}'].passed is not a bool")

    return errs


def find_strays(canonical_dir):
    """BENCH_*.json files outside the canonical dir (walked from its parent).

    Hidden dirs and build trees are skipped: those hold transient local
    artifacts (benches run from a build cwd write ./telemetry there), not
    committed copies.
    """
    root = os.path.dirname(os.path.abspath(canonical_dir)) or "."
    canon = os.path.abspath(canonical_dir)
    strays = []
    for cur, dirs, files in os.walk(root):
        dirs[:] = [
            x for x in dirs
            if not x.startswith(".") and not x.startswith("build")
            and os.path.join(cur, x) != canon
        ]
        for f in files:
            if f.startswith("BENCH_") and f.endswith(".json"):
                strays.append(os.path.join(cur, f))
    return strays


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    paths = argv[1:]
    if paths[0] == "--dir":
        if len(paths) != 2:
            print(__doc__.strip(), file=sys.stderr)
            return 2
        d = paths[1]
        paths = sorted(glob.glob(os.path.join(d, "BENCH_*.json")))
        for bench in FULL_SET:
            expect = os.path.join(d, f"BENCH_{bench}.json")
            if expect not in paths:
                failures += 1
                print(f"FAIL {expect}: missing from the reference set",
                      file=sys.stderr)
        for stray in sorted(find_strays(d)):
            failures += 1
            print(f"FAIL {stray}: bench JSON outside the canonical "
                  f"telemetry dir '{d}' (stale copy? move or delete it)",
                  file=sys.stderr)
    for path in paths:
        errs = check(path)
        if errs:
            failures += 1
            for e in errs:
                print(f"FAIL {e}", file=sys.stderr)
        else:
            print(f"OK   {path}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
