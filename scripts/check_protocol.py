#!/usr/bin/env python3
"""Protocol-discipline linter for the Sherman tree.

Two rule families, both cheap textual checks that run pre-build in CI:

1. raw-verb containment: constructing a mutating rdma::WorkRequest
   (Write / Cas / MaskedCas / Faa) is only legal inside the blessed
   protocol layers (the fabric itself, HOCL, the tree, recovery,
   migration, the extension hash table) and the fabric-layer unit test.
   Everywhere else must go through those wrappers -- a raw write from,
   say, route/ or cache/ bypasses lock/lease/intent discipline and is
   exactly what DMSan exists to catch at runtime. A deliberate exception
   carries an inline `// protocol-ok: <reason>` on the same line.

2. discarded coroutine: sim::Task<T> is lazy -- `qp.Post(wr);` without a
   co_await silently does NOTHING (no work request is ever posted). Any
   statement calling a task-returning fabric entry point (.Post/.PostBatch/
   .PostReadBatch/.Rpc) must co_await it, sim::Spawn it, bind it, or
   return it.

Exit status 0 = clean, 1 = findings (printed as file:line: message).
"""

import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Layers allowed to build mutating work requests directly.
BLESSED_RAW_VERBS = (
    "src/rdma/",          # the verbs layer itself
    "src/lock/",          # HOCL lane CAS / release / renew
    "src/core/btree.cc",  # tree write-backs + root swap
    "src/recover/",       # intent publish/clear, replay write-backs
    "src/migrate/",       # copy-then-flip protocol
    "src/ext/",           # extension structures own their protocol
    "src/sanitizer/",     # the checker decodes, never posts
    "tests/rdma_test.cc",  # exercises the raw verbs layer by design
)

RAW_VERB_RE = re.compile(r"WorkRequest::(Write|Cas|MaskedCas|Faa)\s*\(")
SUPPRESS_RE = re.compile(r"//\s*protocol-ok:\s*\S")

# Lazy-task entry points whose result must be consumed.
TASK_CALL_RE = re.compile(r"\.\s*(Post|PostBatch|PostReadBatch|Rpc)\s*\(")
CONSUMED_RE = re.compile(
    r"co_await|co_return|\breturn\b|Spawn\s*\(|=|\bco_yield\b")

SCAN_DIRS = ("src", "tests", "bench", "examples")
SCAN_EXTS = (".cc", ".h", ".cpp", ".hpp")


def strip_strings_and_comments(text):
    """Blank out string/char literals and comments, preserving newlines and
    `protocol-ok` markers (kept so suppression survives the stripping)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            comment = text[i:j]
            out.append("// protocol-ok: x" if "protocol-ok" in comment else "")
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append(text.count("\n", i, j) * "\n")
            i = j
        elif c == "'" and i > 0 and (text[i - 1].isalnum() or
                                     text[i - 1] == "_"):
            out.append(c)  # C++14 digit separator (10'000), not a char literal
            i += 1
        elif c in "\"'":
            q = c
            j = i + 1
            while j < n and text[j] != q:
                j += 2 if text[j] == "\\" else 1
            out.append(q + q + text.count("\n", i, j) * "\n")
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def iter_statements(lines):
    """Yield (first_line_no, statement_text) joining lines up to ';' or '{'.

    Good enough for call-site linting; declarations and control flow join
    harmlessly into statements the rules ignore.
    """
    buf, start = [], None
    for ln, line in enumerate(lines, 1):
        if start is None and line.strip():
            start = ln
        buf.append(line)
        if ";" in line or "{" in line or "}" in line:
            yield start or ln, " ".join(buf)
            buf, start = [], None
    if buf:
        yield start or len(lines), " ".join(buf)


def lint_file(relpath, findings):
    path = os.path.join(ROOT, relpath)
    with open(path, encoding="utf-8", errors="replace") as f:
        raw = f.read()
    text = strip_strings_and_comments(raw)
    lines = text.split("\n")
    raw_lines = raw.split("\n")

    blessed = any(relpath.startswith(p) or relpath == p
                  for p in BLESSED_RAW_VERBS)

    for ln, line in enumerate(lines, 1):
        if not blessed and RAW_VERB_RE.search(line):
            prev = lines[ln - 2] if ln >= 2 else ""
            if not (SUPPRESS_RE.search(line) or SUPPRESS_RE.search(prev)):
                findings.append(
                    f"{relpath}:{ln}: mutating WorkRequest built outside the "
                    f"blessed protocol layers (wrap it, or annotate "
                    f"`// protocol-ok: <reason>`)")

    for ln, stmt in iter_statements(lines):
        if not TASK_CALL_RE.search(stmt):
            continue
        if CONSUMED_RE.search(stmt) or "protocol-ok" in stmt:
            continue
        # Declaration contexts (e.g. `sim::Task<T> Post(...)`) contain no
        # receiver-dot call after stripping, so reaching here means a real
        # discarded call.
        findings.append(
            f"{relpath}:{ln}: fabric call returns a lazy sim::Task that is "
            f"discarded -- nothing will be posted (co_await it, Spawn it, "
            f"or bind it)")


def main():
    findings = []
    for d in SCAN_DIRS:
        base = os.path.join(ROOT, d)
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(SCAN_EXTS):
                    rel = os.path.relpath(os.path.join(dirpath, name), ROOT)
                    lint_file(rel.replace(os.sep, "/"), findings)
    for f in findings:
        print(f)
    if findings:
        print(f"check_protocol: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("check_protocol: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
