// Quickstart: build a disaggregated-memory deployment, bulkload a Sherman
// tree, and run point/range operations from a client coroutine.
//
//   $ ./quickstart
//
// Everything runs inside the deterministic fabric simulator; "latency"
// below is simulated time, matching what the hardware testbed would show.
#include <cstdio>
#include <vector>

#include "core/btree.h"
#include "core/presets.h"

using namespace sherman;

namespace {

sim::Task<void> Demo(ShermanSystem* system, TreeClient* client) {
  sim::Simulator& sim = system->simulator();

  // Point lookup of a bulkloaded key.
  uint64_t value = 0;
  sim::SimTime t0 = sim.now();
  Status st = co_await client->Lookup(2'000, &value);
  std::printf("lookup(2000)  -> %s, value=%llu  (%.2f us)\n",
              st.ToString().c_str(), static_cast<unsigned long long>(value),
              (sim.now() - t0) / 1000.0);

  // Insert a new key, then read it back.
  t0 = sim.now();
  st = co_await client->Insert(1'000'001, 777);
  std::printf("insert(1000001) -> %s  (%.2f us)\n", st.ToString().c_str(),
              (sim.now() - t0) / 1000.0);
  st = co_await client->Lookup(1'000'001, &value);
  std::printf("lookup(1000001) -> %s, value=%llu\n", st.ToString().c_str(),
              static_cast<unsigned long long>(value));

  // Update in place: in Sherman mode this writes back one 18-byte entry,
  // not the whole 1 KB node.
  OpStats stats;
  st = co_await client->Insert(2'000, 424242, &stats);
  std::printf(
      "update(2000)  -> %s; wrote %llu bytes in %u round trips "
      "(two-level versions at work)\n",
      st.ToString().c_str(),
      static_cast<unsigned long long>(stats.bytes_written), stats.round_trips);

  // Range query: parallel leaf fetches.
  std::vector<std::pair<Key, uint64_t>> range;
  t0 = sim.now();
  st = co_await client->RangeQuery(5'000, 10, &range);
  std::printf("range(5000, 10) -> %s  (%.2f us):", st.ToString().c_str(),
              (sim.now() - t0) / 1000.0);
  for (const auto& [k, v] : range) {
    std::printf(" %llu", static_cast<unsigned long long>(k));
  }
  std::printf("\n");

  // Delete.
  st = co_await client->Delete(1'000'001);
  std::printf("delete(1000001) -> %s\n", st.ToString().c_str());
  st = co_await client->Lookup(1'000'001, &value);
  std::printf("lookup(1000001) -> %s (expected NotFound)\n",
              st.ToString().c_str());
}

}  // namespace

int main() {
  // A small deployment: 2 memory servers, 1 compute server.
  rdma::FabricConfig fabric;
  fabric.num_memory_servers = 2;
  fabric.num_compute_servers = 1;
  fabric.ms_memory_bytes = 64ull << 20;

  ShermanSystem system(fabric, ShermanOptions());

  // Bulkload 100k even keys, leaves 80% full (the paper's setup).
  std::vector<std::pair<Key, uint64_t>> kvs;
  for (uint64_t i = 1; i <= 100'000; i++) kvs.emplace_back(2 * i, i);
  system.BulkLoad(kvs, 0.8);
  std::printf("bulkloaded %zu keys; tree height %u\n\n", kvs.size(),
              system.DebugHeight());

  sim::Spawn(Demo(&system, &system.client(0)));
  system.simulator().Run();

  std::printf("\nsimulated time elapsed: %.1f us, %llu events\n",
              system.simulator().now() / 1000.0,
              static_cast<unsigned long long>(system.simulator().steps()));
  return 0;
}
