// contention_study: why write-optimization matters on disaggregated
// memory. Runs the same skewed write-heavy workload against the FG+
// baseline and Sherman (plus each intermediate ablation stage) on
// identical fabrics, and prints the incremental gains — a miniature of the
// paper's Figure 10 you can tweak interactively (e.g. --theta=0.9).
#include <cstdio>
#include <string>

#include "bench/report.h"
#include "bench/runner.h"
#include "core/presets.h"

using namespace sherman;
using namespace sherman::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  const double theta = args.GetDouble("theta", 0.99);
  const uint64_t keys = static_cast<uint64_t>(args.GetInt("keys", 500'000));

  std::printf("Skewed (theta=%.2f) write-intensive workload, %llu keys,\n"
              "4 memory servers, 4 compute servers, 64 client threads.\n",
              theta, static_cast<unsigned long long>(keys));

  Table table("Write-optimization techniques, applied one by one");
  table.SetColumns({"configuration", "Mops", "p50(us)", "p99(us)",
                    "lock handovers", "vs FG+"});
  double fg_mops = 0;
  for (const NamedPreset& stage : AblationStages()) {
    rdma::FabricConfig fabric;
    fabric.num_memory_servers = 4;
    fabric.num_compute_servers = 4;
    fabric.ms_memory_bytes = 128ull << 20;
    ShermanSystem system(fabric, stage.options);
    system.BulkLoad(MakeLoadKvs(keys), 0.8);

    RunnerOptions ropt;
    ropt.threads_per_cs = 16;
    ropt.workload.loaded_keys = keys;
    ropt.workload.zipf_theta = theta;
    ropt.workload.mix = WorkloadMix::WriteIntensive();
    ropt.warmup_ns = 1'000'000;
    ropt.measure_ns = 8'000'000;
    const RunResult r = RunWorkload(&system, ropt);
    if (stage.name == "FG+") fg_mops = r.mops;
    table.AddRow({stage.name, Fmt(r.mops), Fmt(r.P50Us()), Fmt(r.P99Us()),
                  std::to_string(r.handovers),
                  Fmt(r.mops / std::max(fg_mops, 1e-9), 1) + "x"});
    std::fprintf(stderr, "  %s done (%.2f Mops)\n", stage.name.c_str(),
                 r.mops);
  }
  table.Print();
  std::printf(
      "\nReading the table: command combination shortens critical paths,\n"
      "on-chip locks remove PCIe from lock hot paths, the hierarchical\n"
      "structure + handover absorb same-CS contention locally, and\n"
      "two-level versions shrink write-backs from node- to entry-size.\n");
  return 0;
}
