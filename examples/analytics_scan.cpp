// analytics_scan: hybrid transactional/analytical access on one index
// (the data-warehousing motivation from the paper's introduction).
//
// Writers continuously update an orders table while an analytics client
// issues large range scans over recent key ranges. The demo reports scan
// bandwidth (entries/s) and write throughput side by side, plus how often
// a scan observed a freshly written (non-bulkloaded) value — live data
// visibility without any coordination, courtesy of lock-free reads with
// version validation.
#include <cstdio>
#include <vector>

#include "core/btree.h"
#include "core/presets.h"
#include "util/random.h"

using namespace sherman;

namespace {

struct Stats {
  bool stop = false;
  uint64_t writes = 0;
  uint64_t scans = 0;
  uint64_t scanned_entries = 0;
  uint64_t fresh_entries = 0;
  sim::SimTime scan_time_ns = 0;
};

constexpr uint64_t kOrders = 400'000;
constexpr uint64_t kFreshTag = 1ull << 62;

sim::Task<void> Writer(ShermanSystem* system, int cs, uint64_t seed,
                       Stats* stats) {
  TreeClient& client = system->client(cs);
  Random rng(seed);
  while (!stats->stop) {
    const Key key = 2 * (1 + rng.Uniform(kOrders));
    Status st = co_await client.Insert(key, kFreshTag | rng.Uniform(1 << 20));
    SHERMAN_CHECK(st.ok());
    stats->writes++;
  }
}

sim::Task<void> Analyst(ShermanSystem* system, int cs, uint64_t seed,
                        Stats* stats) {
  TreeClient& client = system->client(cs);
  Random rng(seed);
  std::vector<std::pair<Key, uint64_t>> out;
  while (!stats->stop) {
    const Key from = 2 * (1 + rng.Uniform(kOrders));
    const sim::SimTime t0 = system->simulator().now();
    Status st = co_await client.RangeQuery(from, 1'000, &out);
    SHERMAN_CHECK(st.ok());
    stats->scan_time_ns += system->simulator().now() - t0;
    stats->scans++;
    stats->scanned_entries += out.size();
    for (const auto& [k, v] : out) {
      if (v & kFreshTag) stats->fresh_entries++;
    }
  }
}

}  // namespace

int main() {
  rdma::FabricConfig fabric;
  fabric.num_memory_servers = 4;
  fabric.num_compute_servers = 4;
  fabric.ms_memory_bytes = 128ull << 20;

  ShermanSystem system(fabric, ShermanOptions());
  std::vector<std::pair<Key, uint64_t>> kvs;
  for (uint64_t i = 1; i <= kOrders; i++) kvs.emplace_back(2 * i, i);
  system.BulkLoad(kvs, 0.8);
  std::printf("orders table: %llu rows, tree height %u\n",
              static_cast<unsigned long long>(kOrders), system.DebugHeight());

  Stats stats;
  // CSs 0-2 run OLTP writers; CS 3 runs the analyst.
  for (int cs = 0; cs < 3; cs++) {
    for (int t = 0; t < 16; t++) {
      sim::Spawn(Writer(&system, cs, static_cast<uint64_t>(cs) * 100 + t,
                        &stats));
    }
  }
  for (int t = 0; t < 4; t++) {
    sim::Spawn(Analyst(&system, 3, 900 + t, &stats));
  }

  constexpr sim::SimTime kRunNs = 20'000'000;
  system.simulator().At(kRunNs, [&stats] { stats.stop = true; });
  system.simulator().Run();

  const double secs = kRunNs / 1e9;
  std::printf("\nwriters : %.2f M updates/s\n", stats.writes / 1e6 / secs);
  std::printf("analyst : %.0f scans/s, %.1f M entries/s, avg scan %.0f us\n",
              stats.scans / secs, stats.scanned_entries / 1e6 / secs,
              stats.scans ? static_cast<double>(stats.scan_time_ns) /
                                stats.scans / 1000.0
                          : 0.0);
  std::printf("freshness: %.1f%% of scanned entries were live updates\n",
              stats.scanned_entries
                  ? 100.0 * stats.fresh_entries / stats.scanned_entries
                  : 0.0);
  return 0;
}
