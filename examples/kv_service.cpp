// kv_service: a multi-tenant key-value service on disaggregated memory,
// running on the adaptive hybrid system (core/hybrid_system.h).
//
// Three tenants share one Sherman tree over disjoint key ranges, each with
// its own workload profile (the scenarios from the paper's introduction):
//   - "session"  : write-heavy session store (graph/param-server style),
//   - "catalog"  : read-heavy product catalog,
//   - "feed"     : skewed mixed traffic with a hot working set.
// Each tenant runs client threads on its own compute servers. Because the
// tenants map to disjoint logical shards, the router steers them
// independently: the write-heavy and hot tenants stay on Sherman's
// one-sided path while cold catalog shards offload to the memory servers.
// The demo prints per-tenant throughput/tails plus the routing summary.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/hybrid_system.h"
#include "core/presets.h"
#include "util/histogram.h"
#include "util/random.h"

using namespace sherman;

namespace {

struct Tenant {
  const char* name;
  uint64_t key_base;      // tenant key space: [key_base, key_base + keys)
  uint64_t keys;
  double insert_ratio;
  double zipf_theta;
  int cs_first, cs_count;  // compute servers running this tenant
  // results
  uint64_t ops = 0;
  Histogram latency;
};

struct Control {
  bool stop = false;
};

sim::Task<void> TenantWorker(HybridSystem* system, Tenant* tenant, int cs,
                             uint64_t seed, Control* control) {
  route::HybridClient& client = system->client(cs);
  Random rng(seed);
  std::unique_ptr<ScrambledZipfianGenerator> zipf;
  if (tenant->zipf_theta > 0) {
    zipf = std::make_unique<ScrambledZipfianGenerator>(tenant->keys,
                                                       tenant->zipf_theta);
  }
  while (!control->stop) {
    const uint64_t rank = zipf ? zipf->Next(rng) : rng.Uniform(tenant->keys);
    const Key key = tenant->key_base + rank;
    const sim::SimTime t0 = system->simulator().now();
    if (rng.NextDouble() < tenant->insert_ratio) {
      Status st = co_await client.Insert(key, rng.Next());
      SHERMAN_CHECK(st.ok());
    } else {
      uint64_t value = 0;
      Status st = co_await client.Lookup(key, &value);
      SHERMAN_CHECK(st.ok() || st.IsNotFound());
    }
    tenant->ops++;
    tenant->latency.Add(system->simulator().now() - t0);
  }
}

}  // namespace

int main() {
  rdma::FabricConfig fabric;
  fabric.num_memory_servers = 4;
  fabric.num_compute_servers = 6;
  fabric.ms_memory_bytes = 128ull << 20;

  HybridOptions options;
  options.tree = ShermanOptions();
  // Memory-constrained compute servers: no index cache at all (FlexKV's
  // motivating regime). Every one-sided lookup walks the full descent, so
  // the router compensates by offloading cold shards to the memory
  // servers, while hot/write-heavy shards stay one-sided.
  options.tree.enable_cache = false;
  options.router.num_shards = 96;
  options.router.epoch_ns = 1'000'000;
  HybridSystem system(fabric, options);

  Tenant tenants[] = {
      {"session(write-heavy)", 1ull << 32, 200'000, 0.9, 0.0, 0, 2},
      {"catalog(read-heavy)", 2ull << 32, 400'000, 0.05, 0.0, 2, 2},
      {"feed(skewed-mixed)", 3ull << 32, 200'000, 0.5, 0.99, 4, 2},
  };

  // Bulkload all tenants' keys in one sorted pass.
  std::vector<std::pair<Key, uint64_t>> kvs;
  for (const Tenant& t : tenants) {
    for (uint64_t i = 0; i < t.keys; i++) {
      kvs.emplace_back(t.key_base + i, i);
    }
  }
  system.BulkLoad(kvs, 0.8);
  std::printf("bulkloaded %zu keys across %d tenants; tree height %u\n",
              kvs.size(), 3, system.sherman().DebugHeight());

  Control control;
  constexpr int kThreadsPerCs = 8;
  for (Tenant& t : tenants) {
    for (int cs = t.cs_first; cs < t.cs_first + t.cs_count; cs++) {
      for (int i = 0; i < kThreadsPerCs; i++) {
        sim::Spawn(TenantWorker(&system, &t, cs,
                                static_cast<uint64_t>(cs) * 100 + i,
                                &control));
      }
    }
  }

  constexpr sim::SimTime kRunNs = 20'000'000;  // 20 ms simulated
  system.router().Start();
  system.simulator().At(kRunNs, [&control, &system] {
    control.stop = true;
    system.router().Stop();
  });
  system.simulator().Run();

  std::printf("\n%-22s %10s %10s %10s %10s\n", "tenant", "Mops", "p50(us)",
              "p99(us)", "ops");
  for (const Tenant& t : tenants) {
    std::printf("%-22s %10.2f %10.1f %10.1f %10llu\n", t.name,
                static_cast<double>(t.ops) * 1000.0 / kRunNs,
                t.latency.P50() / 1000.0, t.latency.P99() / 1000.0,
                static_cast<unsigned long long>(t.ops));
  }

  const RouteStats rs = system.router().stats();
  int shards_rpc = 0;
  for (route::Path p : system.router().assignment()) {
    if (p == route::Path::kRpc) shards_rpc++;
  }
  std::printf(
      "\nrouting: %.1f%% of ops offloaded to MS-side RPC "
      "(avg %.1f us vs %.1f us one-sided), %d/%d shards on RPC at end, "
      "%llu epochs, %llu shard flips, %llu fallbacks\n",
      100.0 * rs.RpcShare(), rs.AvgRpcUs(), rs.AvgOneSidedUs(), shards_rpc,
      system.router().num_shards(),
      static_cast<unsigned long long>(rs.epochs),
      static_cast<unsigned long long>(rs.shard_flips),
      static_cast<unsigned long long>(rs.rpc_fallbacks));
  return 0;
}
